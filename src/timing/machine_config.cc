#include "timing/machine_config.hh"

#include "engine/params.hh"

namespace cdvm::timing
{

namespace
{

/**
 * BBT-generated code runs at 82-85% of SBT-code IPC, which is "only
 * slightly less than the baseline superscalar" (Section 5.3) -- the
 * SBT code's microarchitectural IPC capability (~18% over a plain
 * superscalar before cache dilution) puts 0.84x of it at roughly the
 * reference's level. Relative to SBT code at the aggregate level we
 * model BBT code 10% slower (i.e. ~2% below the reference).
 */
constexpr double BBT_VS_SBT_CPI = engine::params::BBT_VS_SBT_CPI;

/** Interpretation is 10x-100x slower than native (Section 1.1). */
constexpr double INTERP_SLOWDOWN = engine::params::INTERP_SLOWDOWN;

} // namespace

MachineConfig
MachineConfig::refSuperscalar()
{
    MachineConfig m;
    m.name = "Ref: superscalar";
    m.kind = MachineKind::RefSuperscalar;
    m.cold = ColdMode::Native;
    m.hasSbt = false;
    m.costs = dbt::TranslationCosts::frontendAssist(); // no translation
    m.coldCpiFactor = 1.0;
    m.frontendX86Decoders = true; // always-on hardware x86 decoders
    return m;
}

MachineConfig
MachineConfig::vmSoft()
{
    MachineConfig m;
    m.name = "VM.soft";
    m.kind = MachineKind::VmSoft;
    m.cold = ColdMode::BbtCode;
    m.hasSbt = true;
    m.costs = dbt::TranslationCosts::software();
    m.coldCpiFactor = BBT_VS_SBT_CPI;
    m.frontendX86Decoders = false; // no hardware x86 decode at all
    return m;
}

MachineConfig
MachineConfig::vmSoftTmpl()
{
    MachineConfig m = vmSoft();
    m.name = "VM.soft.tmpl";
    // Same machine, cheaper Delta_BBT: translation maps decoded forms
    // straight to templates instead of lowering through the uop IR.
    m.costs = dbt::TranslationCosts::templateTier();
    return m;
}

MachineConfig
MachineConfig::vmBe()
{
    MachineConfig m;
    m.name = "VM.be";
    m.kind = MachineKind::VmBe;
    m.cold = ColdMode::BbtCode;
    m.hasSbt = true;
    m.costs = dbt::TranslationCosts::backendAssist();
    m.coldCpiFactor = BBT_VS_SBT_CPI;
    // One XLTx86 decoder, active only while the HAloop runs.
    m.frontendX86Decoders = false;
    return m;
}

MachineConfig
MachineConfig::vmFe()
{
    MachineConfig m;
    m.name = "VM.fe";
    m.kind = MachineKind::VmFe;
    m.cold = ColdMode::X86Direct;
    m.hasSbt = true;
    m.costs = dbt::TranslationCosts::frontendAssist();
    // Dual-mode execution of cold x86 code behaves like the reference
    // superscalar (Section 5.2).
    m.coldCpiFactor = 1.0;
    m.frontendX86Decoders = true; // on while not in hotspot code
    return m;
}

MachineConfig
MachineConfig::vmInterp()
{
    MachineConfig m;
    m.name = "VM: Interp & SBT";
    m.kind = MachineKind::VmInterp;
    m.cold = ColdMode::Interpret;
    m.hasSbt = true;
    m.costs = dbt::TranslationCosts::interpreter();
    m.coldCpiFactor = INTERP_SLOWDOWN;
    // Interpretation threshold: N = Delta_SBT / (p-1) with the much
    // larger interpretation slowdown folded in -- the paper derives 25.
    m.hotThreshold = engine::params::INTERP_HOT_THRESHOLD;
    m.frontendX86Decoders = false;
    return m;
}

MachineConfig
MachineConfig::vmSoftAsync(unsigned contexts)
{
    MachineConfig m = vmSoft();
    m.name = "VM.soft.async";
    m.asyncTranslators = contexts;
    return m;
}

MachineConfig
MachineConfig::vmBeAsync(unsigned contexts)
{
    MachineConfig m = vmBe();
    m.name = "VM.be.async";
    m.asyncTranslators = contexts;
    return m;
}

MachineConfig
MachineConfig::vmSoftWarm()
{
    MachineConfig m = vmSoft();
    m.name = "VM.soft.warm";
    m.warmStart = true;
    return m;
}

MachineConfig
MachineConfig::vmBeWarm()
{
    MachineConfig m = vmBe();
    m.name = "VM.be.warm";
    m.warmStart = true;
    return m;
}

std::vector<MachineConfig>
MachineConfig::table2()
{
    return {refSuperscalar(), vmSoft(), vmBe(), vmFe()};
}

} // namespace cdvm::timing
