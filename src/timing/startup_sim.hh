/**
 * @file
 * The block-level startup timing simulator.
 *
 * This is the engine behind the paper's transient-performance
 * experiments (Figs. 2, 8, 9, 10, 11). It simulates the memory-startup
 * scenario (Section 3.1, scenario 2): the program binary is in memory,
 * all caches are cold, and translation/optimization proceed
 * concurrently with execution.
 *
 * The simulator is trace-driven at dynamic-basic-block granularity and
 * keeps honest cycle bookkeeping for exactly the effects the paper's
 * model identifies as first-order:
 *
 *  - translation work: Delta_BBT and Delta_SBT cycles per translated
 *    instruction (Eq. 1), with the per-machine hardware-assist values;
 *  - emulation quality: cold code runs at the mode's CPI (BBT code at
 *    82-85 % of SBT code, interpretation 10-100x slower, x86-mode at
 *    reference speed);
 *  - memory hierarchy warm-up: instruction fetch goes through the
 *    Table 2 cache hierarchy at the image addresses of the mode being
 *    executed (x86 image or code cache), and translators touch both
 *    images on the data side;
 *  - staged hotspot optimization at the Eq. 2 threshold, with
 *    superblock regions covering neighbouring blocks.
 */

#ifndef CDVM_TIMING_STARTUP_SIM_HH
#define CDVM_TIMING_STARTUP_SIM_HH

#include <array>
#include <vector>

#include "engine/events.hh"
#include "memsys/hierarchy.hh"
#include "timing/machine_config.hh"
#include "workload/trace_gen.hh"
#include "workload/winstone.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::timing
{

/** Where cycles go (Fig. 10 categories). */
enum class CycleCat : u8
{
    ColdExec = 0, //!< native / x86-mode / interpreted execution
    BbtExec,      //!< executing BBT translations
    SbtExec,      //!< executing optimized hotspot code
    BbtXlate,     //!< BBT translation work (the paper's "BBT overhead")
    SbtXlate,     //!< SBT translation work
    Dispatch,     //!< VMM dispatch / linking not covered by chaining
    WarmLoad,     //!< warm-start repository load/install work
    NUM_CATS,
};

/** One point on the startup curve. */
struct CurveSample
{
    Cycles cycles = 0;
    u64 insns = 0;
    std::array<double, static_cast<size_t>(CycleCat::NUM_CATS)>
        catCycles{};
    /** Cumulative cycles with the x86 decode logic powered on. */
    double decodeActive = 0.0;
};

/** Full outcome of one machine x workload run. */
struct StartupResult
{
    std::string machine;
    std::string app;
    Cycles totalCycles = 0;
    u64 totalInsns = 0;
    double cpiRef = 1.0;      //!< workload reference CPI
    double steadyGain = 0.0;  //!< VM steady-state gain for this app
    double steadyIpc = 1.0;   //!< this machine's asymptotic IPC

    std::vector<CurveSample> samples;

    // Translation statistics.
    u64 staticInsnsBbt = 0;   //!< M_BBT actually translated
    u64 staticInsnsSbt = 0;   //!< M_SBT actually optimized
    u64 bbtTranslations = 0;
    u64 sbtRegionTranslations = 0;
    /** Warm start: repository entries installed before execution. */
    u64 warmInstalls = 0;
    /** Warm start: static instructions installed from the repository. */
    u64 staticInsnsWarm = 0;

    // Dynamic instruction mix.
    u64 insnsCold = 0;
    u64 insnsBbt = 0;
    u64 insnsSbt = 0;

    std::array<double, static_cast<size_t>(CycleCat::NUM_CATS)>
        catCycles{};
    double decodeActiveCycles = 0.0;

    /**
     * SBT translation work performed on background contexts (async
     * machines): occupancy of the private translation contexts, not
     * part of totalCycles or the sbt_xlate category, both of which
     * cover only emulation-thread (critical-path) cycles.
     */
    double bgSbtXlateCycles = 0.0;

    /** Fraction of dynamic instructions from optimized hotspot code. */
    double
    hotspotCoverage() const
    {
        return totalInsns
                   ? static_cast<double>(insnsSbt) / totalInsns
                   : 0.0;
    }

    double
    catFraction(CycleCat c) const
    {
        return totalCycles
                   ? catCycles[static_cast<size_t>(c)] / totalCycles
                   : 0.0;
    }

    /** Aggregate IPC normalized to the reference steady-state IPC. */
    double
    normalizedAggregateIpc(std::size_t sample_idx) const
    {
        const CurveSample &s = samples[sample_idx];
        if (s.cycles == 0)
            return 0.0;
        return static_cast<double>(s.insns) * cpiRef / s.cycles;
    }

    /**
     * Publish the run's cycle/instruction accounting under prefix.*
     * (e.g. timing.startup.cycles.bbt_xlate). Values are copied at
     * call time.
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;
};

/** The simulator. */
class StartupSim
{
  public:
    StartupSim(const MachineConfig &machine,
               const workload::AppProfile &app);

    /**
     * Attach an extra consumer of the simulated stage-event stream
     * (the same profiling sinks the functional VMM takes: a
     * SamplingProfiler heatmaps the simulated run, a FlightSink rides
     * the simulated timeline). Must outlive run().
     */
    void attachSink(engine::StageSink *s) { extraSinks.push_back(s); }

    /** Run the whole trace; returns the result. */
    StartupResult run();

  private:
    MachineConfig m;
    workload::AppProfile app;
    std::vector<engine::StageSink *> extraSinks;
};

} // namespace cdvm::timing

#endif // CDVM_TIMING_STARTUP_SIM_HH
