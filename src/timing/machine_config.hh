/**
 * @file
 * Machine configurations (paper Table 2).
 *
 * Four primary machines, plus the interpreter-based VM of Fig. 2:
 *
 *   Ref: superscalar -- conventional x86 processor. Hardware x86
 *        decoders, no dynamic optimization.
 *   VM.soft -- co-designed VM, software-only BBT and SBT.
 *   VM.be   -- co-designed VM, BBT assisted by the backend XLTx86
 *              functional unit.
 *   VM.fe   -- co-designed VM, dual-mode frontend decoders (no BBT).
 *   VM.interp -- staged interpretation + SBT (Fig. 2 only).
 *
 * All machines share the Table 2 pipeline resources and memory
 * hierarchy; they differ in how cold and hot x86 code is emulated and
 * in translation costs.
 */

#ifndef CDVM_TIMING_MACHINE_CONFIG_HH
#define CDVM_TIMING_MACHINE_CONFIG_HH

#include <string>

#include "dbt/costs.hh"
#include "memsys/hierarchy.hh"

namespace cdvm::timing
{

/** Machine flavours. */
enum class MachineKind : u8
{
    RefSuperscalar,
    VmSoft,
    VmBe,
    VmFe,
    VmInterp,
};

/** How cold (untranslated) code is emulated. */
enum class ColdMode : u8
{
    Native,     //!< Ref: x86 executes directly, always
    Interpret,  //!< software interpretation
    BbtCode,    //!< execute BBT-translated code
    X86Direct,  //!< VM.fe dual-mode execution of x86 code
};

/** Table 2 pipeline resources (shared by all machines). */
struct PipelineParams
{
    unsigned fetchBytes = 16;
    unsigned width = 3;       //!< decode/rename/issue/retire width
    unsigned issueSlots = 36;
    unsigned robEntries = 128;
    unsigned ldqSlots = 32;
    unsigned stqSlots = 20;
    unsigned prfEntries = 128;
    unsigned branchMissPenalty = 12;
};

/** A complete machine configuration for the startup simulator. */
struct MachineConfig
{
    std::string name;
    MachineKind kind = MachineKind::RefSuperscalar;
    ColdMode cold = ColdMode::Native;
    bool hasSbt = false;           //!< hotspot optimization stage
    dbt::TranslationCosts costs;   //!< translation cycle costs
    /** Eq. 2 threshold. */
    u64 hotThreshold = engine::params::HOT_THRESHOLD;
    PipelineParams pipeline;
    memsys::HierarchyParams memory;

    /**
     * CPI multiplier of the emulation mode for cold code, relative to
     * the workload's reference CPI:
     *   Ref / VM.fe x86-mode: 1.0 (same pipeline behaviour);
     *   BBT code: 1/0.84 (runs at 82-85% of SBT-code IPC, paper 5.3);
     *   interpretation: 10x-100x (paper 1.1; calibrated to Fig. 2).
     */
    double coldCpiFactor = 1.0;

    /** SBT-code CPI factor; the per-app steady-state gain divides it. */
    double sbtCpiFactor = 1.0;

    /**
     * Hotspot coverage at which the published steady-state gain is
     * quoted: the per-instruction gain of optimized code is
     * steadyGain / steadyCoverage (full-run coverage approaches but
     * does not reach 100%, paper Section 5.3).
     */
    double steadyCoverage = 0.85;

    /**
     * Translated-code expansion: code-cache bytes per x86 byte
     * (measured from the real translators in calibration tests).
     */
    double codeExpansion = 1.6;

    /** VMM dispatch overhead when a chain is missing (cycles). */
    double dispatchCycles = 30.0;

    /**
     * Fraction of an L2-hit instruction-fetch miss that fetch-ahead
     * hides (sequential prefetch overlaps the 12-cycle L2 latency;
     * full-memory misses stall for real).
     */
    double l2FetchOverlap = 0.7;

    /**
     * Fraction of a translator store miss that actually stalls
     * (write buffers absorb most code-cache write misses).
     */
    double storeStallFraction = 0.3;

    /**
     * Instruction-fetch penalty multiplier for translated code.
     * Code-cache layout is execution-ordered and superblocks fetch
     * straight-line, giving "better temporal locality and more
     * efficient instruction fetching" than the original x86 image
     * (paper Section 3.1). 1.0 = no advantage.
     */
    double vmFetchLocality = 0.7;

    /**
     * x86 decode activity accounting for Fig. 11: true when the
     * machine's frontend x86 decoders are on while executing x86 or
     * cold code.
     */
    bool frontendX86Decoders = false;

    /**
     * Background SBT translation contexts. 0 = the paper's synchronous
     * model (Delta_SBT charged on the emulation thread the instant a
     * region goes hot). N >= 1 moves hotspot optimization onto N
     * concurrent contexts: the emulation thread keeps running the
     * region in its pre-hot mode while the optimization is in flight,
     * and Delta_SBT becomes context occupancy instead of critical-path
     * cycles.
     */
    unsigned asyncTranslators = 0;

    /**
     * Warm start from a persistent translation repository (dbt/persist
     * format saved by a previous run). Instead of paying Delta_BBT
     * lazily on every first touch, the machine pays an up-front load
     * cost -- validating the repository against guest memory and
     * copying the pre-translated bodies into the code cache -- and
     * then runs every block as BBT code from the first instruction.
     */
    bool warmStart = false;

    /**
     * Per-instruction cost of a warm install. The v1 repository paid
     * ~3 cycles/insn (page-hash validation, fixed-format decode of
     * the saved body, code-cache copy). The v2 zero-copy image drops
     * the decode and the copy entirely -- translations bind views
     * into the mapped image and only the content-address check plus
     * one relocation pass remain -- so the default is ~1 cycle/insn.
     * Measured justification: bench_warmstart's host-side install
     * ratio (image.load_ratio_vs_decode) shows the mapped path >= 2x
     * cheaper per installed instruction, gated in CI.
     */
    double warmLoadCyclesPerInsn =
        engine::params::WARM_LOAD_MAPPED_CPI;

    /**
     * Fraction of warm-load memory stall hidden by streaming: the
     * loader walks the repository and both images strictly
     * sequentially, so hardware prefetch covers most read-miss
     * latency and write buffers drain code-cache stores off the
     * critical path. Demand misses during execution get no such
     * treatment (they are priced by the normal fetch/data paths).
     */
    double warmStreamOverlap = 0.85;

    // --- presets --------------------------------------------------------
    static MachineConfig refSuperscalar();
    static MachineConfig vmSoft();
    /** VM.soft with the IR-less template cold tier (software XLTx86):
     *  Delta_BBT scaled by the measured template/software ratio. */
    static MachineConfig vmSoftTmpl();
    static MachineConfig vmBe();
    static MachineConfig vmFe();
    static MachineConfig vmInterp();
    /** VM.soft with N background SBT contexts. */
    static MachineConfig vmSoftAsync(unsigned contexts = 2);
    /** VM.be with N background SBT contexts. */
    static MachineConfig vmBeAsync(unsigned contexts = 2);
    /** VM.soft warm-started from a translation repository. */
    static MachineConfig vmSoftWarm();
    /** VM.be warm-started from a translation repository. */
    static MachineConfig vmBeWarm();

    /** All four Table 2 machines in paper order. */
    static std::vector<MachineConfig> table2();
};

} // namespace cdvm::timing

#endif // CDVM_TIMING_MACHINE_CONFIG_HH
