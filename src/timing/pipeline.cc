#include "timing/pipeline.hh"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.hh"
#include "common/statreg.hh"

namespace cdvm::timing
{

using uops::UOp;
using uops::Uop;
using uops::UopVec;

namespace
{

bool
isMul(const Uop &u)
{
    return u.op == UOp::Imul || u.op == UOp::MulWide ||
           u.op == UOp::ImulWide;
}

bool
isDiv(const Uop &u)
{
    return u.op == UOp::DivWide || u.op == UOp::IdivWide;
}

/** Ring of the last N event cycles (structural occupancy modeling). */
class Ring
{
  public:
    explicit Ring(std::size_t capacity) : cap(capacity) {}

    /** Cycle at which a new entry can be allocated. */
    Cycles
    availableAt() const
    {
        if (cap == 0)
            return 0;
        return q.size() < cap ? 0 : q.front();
    }

    void
    push(Cycles free_at)
    {
        if (cap == 0)
            return;
        if (q.size() == cap)
            q.pop_front();
        q.push_back(free_at);
    }

  private:
    std::size_t cap;
    std::deque<Cycles> q;
};

/** Per-cycle bandwidth counters with monotonically growing cycles. */
class Bandwidth
{
  public:
    explicit Bandwidth(unsigned per_cycle) : width(per_cycle) {}

    /** First cycle >= c with a free slot; consumes it. */
    Cycles
    take(Cycles c)
    {
        for (;;) {
            ensure(c);
            // Requests are not monotonic (out-of-order issue); a
            // request older than the retained window is clamped to the
            // window start -- those ancient slots saturated long ago.
            if (c < base)
                c = base;
            if (used[c - base] < width) {
                ++used[c - base];
                return c;
            }
            ++c;
        }
    }

  private:
    void
    ensure(Cycles c)
    {
        if (used.empty()) {
            // Leave headroom below the first request: later requests
            // may be ready at earlier cycles (out-of-order issue).
            base = c > 4096 ? c - 4096 : 0;
            used.assign(8192, 0);
        }
        if (c < base)
            return;
        while (c - base >= used.size())
            used.resize(used.size() * 2, 0);
        // Periodically discard the consumed prefix, keeping a window
        // deep enough (>= 512K cycles) that live requests never land
        // before it.
        if (used.size() > (1u << 20)) {
            std::size_t keep = used.size() / 2;
            std::size_t drop = used.size() - keep;
            used.erase(used.begin(),
                       used.begin() + static_cast<long>(drop));
            base += drop;
        }
    }

    unsigned width;
    std::vector<u8> used;
    Cycles base = 0;
};

} // namespace

UopVec
unfused(const UopVec &body)
{
    UopVec v = body;
    for (Uop &u : v)
        u.fusedHead = false;
    return v;
}

PipelineSim::PipelineSim(const PipelineParams &params,
                         const PipelineKnobs &knobs)
    : p(params), k(knobs)
{
}

PipelineResult
PipelineSim::run(const UopVec &body, unsigned iterations)
{
    PipelineResult res;
    if (body.empty() || iterations == 0)
        return res;

    // Distinct x86 instructions in one iteration.
    std::unordered_set<Addr> pcs;
    for (const Uop &u : body)
        pcs.insert(u.x86pc);

    std::vector<Cycles> reg_ready(uops::NUM_UREGS, 0);
    Cycles flag_ready = 0;

    Bandwidth dispatch_bw(p.width);
    Bandwidth retire_bw(p.width);
    Bandwidth issue_bw(p.width);
    Bandwidth alu_bw(k.aluUnits);
    Bandwidth mem_bw(k.memPorts);

    Ring rob(p.robEntries);
    Ring iq(p.issueSlots);
    Ring ldq(p.ldqSlots);
    Ring stq(p.stqSlots);

    Cycles fetch_ready = 0;   //!< front-end stall point (mispredicts)
    Cycles last_retire = 0;
    u64 branch_seen = 0;
    const u64 miss_every =
        k.branchMissRate > 0.0
            ? std::max<u64>(1, static_cast<u64>(1.0 / k.branchMissRate))
            : 0;

    for (unsigned it = 0; it < iterations; ++it) {
        for (std::size_t i = 0; i < body.size(); ++i) {
            const Uop &head = body[i];
            const Uop *tail = nullptr;
            if (head.fusedHead && i + 1 < body.size()) {
                tail = &body[i + 1];
            }

            // --- dispatch: width, ROB, IQ, LDQ/STQ occupancy --------
            Cycles d = fetch_ready;
            d = std::max(d, rob.availableAt());
            d = std::max(d, iq.availableAt());
            const Uop &memop = tail && tail->isMem() ? *tail : head;
            const bool is_load = head.isLoad();
            const bool is_store = head.isStore();
            (void)memop;
            if (is_load)
                d = std::max(d, ldq.availableAt());
            if (is_store)
                d = std::max(d, stq.availableAt());
            d = dispatch_bw.take(d);

            // --- readiness ------------------------------------------
            Cycles ready = d + 1; // rename-to-issue minimum
            u8 srcs[3];
            head.sources(srcs);
            for (u8 s : srcs) {
                if (s != uops::UREG_NONE)
                    ready = std::max(ready, reg_ready[s]);
            }
            if (head.readsFlags())
                ready = std::max(ready, flag_ready);
            if (tail) {
                u8 tsrcs[3];
                tail->sources(tsrcs);
                const u8 hdst = head.destination();
                for (u8 s : tsrcs) {
                    if (s != uops::UREG_NONE && s != hdst)
                        ready = std::max(ready, reg_ready[s]);
                }
                if (tail->readsFlags() && !head.writeFlags)
                    ready = std::max(ready, flag_ready);
            }

            // --- issue: window + functional unit ---------------------
            Cycles issue = issue_bw.take(ready);
            if (head.isMem() || (tail && tail->isMem()))
                issue = mem_bw.take(issue);
            else
                issue = alu_bw.take(issue);

            // --- execute ----------------------------------------------
            Cycles lat = 1;
            if (head.isLoad())
                lat = k.loadLatency;
            else if (isMul(head))
                lat = k.mulLatency;
            else if (isDiv(head))
                lat = k.divLatency;
            else if (head.op == UOp::XltX86)
                lat = 4;
            // A fused pair executes on the collapsed ALU: the
            // dependent tail completes in the same cycle slot.
            Cycles complete = issue + lat;

            // --- writeback ---------------------------------------------
            u8 hd = head.destination();
            if (hd != uops::UREG_NONE)
                reg_ready[hd] = complete;
            if (head.writeFlags || head.op == UOp::Cmp ||
                head.op == UOp::Tst) {
                flag_ready = complete;
            }
            if (tail) {
                u8 td = tail->destination();
                if (td != uops::UREG_NONE)
                    reg_ready[td] = complete;
                if (tail->writeFlags || tail->op == UOp::Cmp ||
                    tail->op == UOp::Tst) {
                    flag_ready = complete;
                }
            }

            // --- retire (in order) --------------------------------------
            Cycles r = retire_bw.take(std::max(complete, last_retire));
            last_retire = r;
            rob.push(r);
            iq.push(issue);
            if (is_load)
                ldq.push(r);
            if (is_store)
                stq.push(r);

            // --- branches -------------------------------------------------
            const Uop &cti = tail ? *tail : head;
            if (cti.isBranch() || (tail && tail->op == UOp::Br)) {
                ++branch_seen;
                if (miss_every && branch_seen % miss_every == 0) {
                    fetch_ready = std::max(
                        fetch_ready, complete + p.branchMissPenalty);
                }
            }

            res.uops += tail ? 2 : 1;
            res.slots += 1;
            if (tail)
                ++res.fusedPairs;
            if (tail)
                ++i; // consume the tail
            res.cycles = std::max(res.cycles, r);
        }
        res.x86Insns += pcs.size();
    }
    return res;
}

void
PipelineResult::exportStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.set(prefix + ".cycles", static_cast<double>(cycles),
            "simulated pipeline cycles");
    reg.set(prefix + ".uops", static_cast<double>(uops),
            "micro-ops executed");
    reg.set(prefix + ".slots", static_cast<double>(slots),
            "pipeline slots occupied (fused pair = 1)");
    reg.set(prefix + ".fused_pairs", static_cast<double>(fusedPairs),
            "dependent pairs executed as macro-ops");
    reg.set(prefix + ".x86_insns", static_cast<double>(x86Insns),
            "distinct x86 instructions covered");
    reg.set(prefix + ".uop_ipc", uopIpc(), "micro-ops per cycle");
    reg.set(prefix + ".x86_ipc", x86Ipc(),
            "x86 instructions per cycle");
    reg.set(prefix + ".fused_fraction", fusedFraction(),
            "fraction of micro-ops executing fused");
}

} // namespace cdvm::timing
