/**
 * @file
 * The asynchronous SBT pipeline's test layer.
 *
 * Three concerns, layered:
 *
 *  - ThreadPool unit behaviour: task execution, bounded-queue
 *    back-pressure, drain semantics, destructor draining;
 *  - VMM-level concurrency protocol: code-cache flushes racing
 *    in-flight installs, stale-result dropping, deterministic-mode
 *    replay producing StageEvent streams identical to the synchronous
 *    pipeline, stats alignment;
 *  - differential stress: a seed sweep running every async
 *    configuration against the reference interpreter. The tier-1 run
 *    uses a small sweep; setting CDVM_STRESS widens it to ~100 seeds
 *    (the `stress`-labelled ctest entry does this).
 */

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "common/threadpool.hh"
#include "engine/events.hh"
#include "helpers.hh"

namespace cdvm
{
namespace
{

using test::RunResult;
using test::runInterp;
using test::runVmm;
using test::sameOutcome;

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, ExecutesAllTasks)
{
    ThreadPool pool(4, 128);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(pool.trySubmit([&sum](unsigned) { ++sum; }));
    pool.drain();
    EXPECT_EQ(sum.load(), 100);
    EXPECT_EQ(pool.executed(), 100u);
    EXPECT_EQ(pool.rejectedFull(), 0u);
}

TEST(ThreadPool, ContextIdsArePrivatePerWorker)
{
    ThreadPool pool(3);
    std::array<std::atomic<int>, 3> perCtx{};
    for (int i = 0; i < 60; ++i)
        ASSERT_TRUE(pool.trySubmit([&perCtx](unsigned ctx) {
            ASSERT_LT(ctx, 3u);
            ++perCtx[ctx];
        }));
    pool.drain();
    int total = 0;
    for (auto &c : perCtx)
        total += c.load();
    EXPECT_EQ(total, 60);
}

TEST(ThreadPool, BoundedQueueBackPressure)
{
    ThreadPool pool(1, 2);

    // Gate the single worker so the queue genuinely fills up.
    std::mutex mu;
    std::condition_variable cv;
    bool gateOpen = false;
    std::atomic<bool> blockerRunning{false};

    ASSERT_TRUE(pool.trySubmit([&](unsigned) {
        blockerRunning = true;
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return gateOpen; });
    }));
    while (!blockerRunning)
        std::this_thread::yield();

    // Worker busy: capacity-2 queue takes exactly two more tasks.
    std::atomic<int> done{0};
    EXPECT_TRUE(pool.trySubmit([&done](unsigned) { ++done; }));
    EXPECT_TRUE(pool.trySubmit([&done](unsigned) { ++done; }));
    EXPECT_FALSE(pool.trySubmit([&done](unsigned) { ++done; }));
    EXPECT_EQ(pool.rejectedFull(), 1u);

    {
        std::lock_guard<std::mutex> lk(mu);
        gateOpen = true;
    }
    cv.notify_all();
    pool.drain();
    EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            ASSERT_TRUE(
                pool.trySubmit([&done](unsigned) { ++done; }));
    }
    EXPECT_EQ(done.load(), 32);
}

// ---------------------------------------------------------------------
// VMM-level async protocol
// ---------------------------------------------------------------------

vmm::VmmConfig
asyncCfg(bool deterministic, unsigned contexts = 2)
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoftAsync(contexts);
    c.hotThreshold = 30;
    c.asyncDeterministic = deterministic;
    return c;
}

vmm::VmmConfig
syncCfg()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.hotThreshold = 30;
    return c;
}

/** Records the full StageEvent stream for replay comparison. */
class RecordingSink : public engine::StageSink
{
  public:
    void onEvent(const engine::StageEvent &e) override
    {
        events.push_back(e);
    }
    std::vector<engine::StageEvent> events;
};

bool
sameEvent(const engine::StageEvent &a, const engine::StageEvent &b)
{
    return a.stage == b.stage && a.insns == b.insns &&
           a.x86Addr == b.x86Addr && a.x86Bytes == b.x86Bytes &&
           a.codeAddr == b.codeAddr && a.codeBytes == b.codeBytes &&
           a.instant == b.instant && a.background == b.background &&
           a.arg == b.arg;
}

/** runVmm with a StageEvent recorder attached. */
RunResult
runVmmRecorded(const workload::Program &prog, x86::Memory &mem,
               const vmm::VmmConfig &cfg, RecordingSink &sink,
               vmm::VmmStats *stats_out = nullptr)
{
    prog.loadInto(mem);
    RunResult r;
    r.cpu = prog.initialState();
    vmm::Vmm monitor(mem, cfg);
    monitor.attachSink(&sink);
    r.exit = monitor.run(r.cpu, 10'000'000);
    r.retired = r.cpu.icount;
    if (stats_out)
        *stats_out = monitor.stats();
    return r;
}

workload::Program
stressProgram(u64 seed)
{
    workload::ProgramParams pp;
    pp.seed = seed;
    pp.numFuncs = 3 + static_cast<unsigned>(seed % 3);
    pp.mainIterations = 40;
    return workload::generateProgram(pp);
}

TEST(AsyncSbt, DeterministicModeReplaysIdentically)
{
    workload::Program prog = stressProgram(7);

    RecordingSink a, b;
    x86::Memory mem_a, mem_b;
    RunResult ra = runVmmRecorded(prog, mem_a, asyncCfg(true), a);
    RunResult rb = runVmmRecorded(prog, mem_b, asyncCfg(true), b);

    EXPECT_TRUE(sameOutcome(prog, ra, mem_a, rb, mem_b));
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        ASSERT_TRUE(sameEvent(a.events[i], b.events[i]))
            << "event " << i << " differs between identical runs";
}

TEST(AsyncSbt, DeterministicModeMatchesSyncEventForEvent)
{
    workload::Program prog = stressProgram(11);

    RecordingSink sync_sink, async_sink;
    x86::Memory mem_s, mem_a;
    vmm::VmmStats st_s, st_a;
    RunResult rs =
        runVmmRecorded(prog, mem_s, syncCfg(), sync_sink, &st_s);
    RunResult ra =
        runVmmRecorded(prog, mem_a, asyncCfg(true), async_sink, &st_a);

    EXPECT_TRUE(sameOutcome(prog, rs, mem_s, ra, mem_a));

    // Barrier-on-install makes the async pipeline emit the exact
    // event stream of the synchronous one, retire for retire.
    ASSERT_EQ(sync_sink.events.size(), async_sink.events.size());
    for (std::size_t i = 0; i < sync_sink.events.size(); ++i)
        ASSERT_TRUE(
            sameEvent(sync_sink.events[i], async_sink.events[i]))
            << "event " << i << " differs from the sync pipeline";

    // And the staged-emulation statistics line up.
    EXPECT_EQ(st_s.hotspotDetections, st_a.hotspotDetections);
    EXPECT_EQ(st_s.sbtTranslations, st_a.sbtTranslations);
    EXPECT_EQ(st_s.sbtInsnsTranslated, st_a.sbtInsnsTranslated);
    EXPECT_EQ(st_a.asyncSbtRequests, st_a.asyncSbtInstalls +
                                         st_a.asyncSbtStaleDropped);
}

TEST(AsyncSbt, FlushRacingInFlightInstallsStaysCorrect)
{
    // Tiny SBT arena: installs force flushes while more results are
    // in flight. Stale results must be dropped, chains reset, and the
    // architected outcome must still match the interpreter.
    workload::ProgramParams pp;
    pp.seed = 77;
    pp.numFuncs = 6;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 8;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted));

    for (bool deterministic : {false, true}) {
        vmm::VmmConfig c = asyncCfg(deterministic);
        c.sbtCacheBytes = 2048; // force flush/retranslate cycles
        x86::Memory mem;
        vmm::VmmStats stats;
        RunResult got = runVmm(prog, mem, c, &stats);
        EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem))
            << (deterministic ? "deterministic" : "free-running");
        EXPECT_GT(stats.sbtCacheFlushes, 0u)
            << "arena was big enough that flushing never happened";
        EXPECT_GT(stats.asyncSbtInstalls, 0u);
    }
}

TEST(AsyncSbt, SingleContextTinyQueueStaysCorrect)
{
    // The most contended configuration: one worker, a one-slot queue.
    // Rejected requests must leave seeds cold until re-detected.
    workload::Program prog = stressProgram(13);

    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted));

    vmm::VmmConfig c = asyncCfg(false, 1);
    c.asyncQueueCap = 1;
    x86::Memory mem;
    vmm::VmmStats stats;
    RunResult got = runVmm(prog, mem, c, &stats);
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem));
    // Every settled request is installed, dropped stale, or a
    // formation failure; some may still be in flight at program exit.
    EXPECT_GT(stats.asyncSbtRequests, 0u);
    EXPECT_LE(stats.asyncSbtInstalls + stats.asyncSbtStaleDropped +
                  stats.sbtFormationFailures,
              stats.asyncSbtRequests);
}

// ---------------------------------------------------------------------
// Differential stress sweep
// ---------------------------------------------------------------------

/**
 * Seeds for the sweep: the tier-1 run keeps it small; the ctest
 * `stress` entry sets CDVM_STRESS to widen it to ~100 seeds (through
 * every configuration, so roughly 400 full VM runs).
 */
unsigned
sweepSeeds()
{
    const char *env = std::getenv("CDVM_STRESS");
    if (env && *env)
        return static_cast<unsigned>(std::atoi(env));
    return 8;
}

TEST(AsyncStress, SeedSweepAllAsyncConfigs)
{
    const unsigned seeds = sweepSeeds();
    struct Case
    {
        const char *name;
        vmm::VmmConfig cfg;
    };
    const Case cases[] = {
        {"vm.soft", syncCfg()},
        {"vm.soft.async", asyncCfg(false)},
        {"vm.soft.async det", asyncCfg(true)},
        {"vm.be.async",
         [] {
             vmm::VmmConfig c = engine::EngineConfig::vmBeAsync();
             c.hotThreshold = 30;
             return c;
         }()},
    };

    for (unsigned seed = 1; seed <= seeds; ++seed) {
        workload::Program prog = stressProgram(1000 + seed);

        x86::Memory ref_mem;
        RunResult ref = runInterp(prog, ref_mem);
        ASSERT_EQ(static_cast<int>(ref.exit),
                  static_cast<int>(x86::Exit::Halted))
            << "seed " << seed;

        for (const Case &c : cases) {
            x86::Memory mem;
            RunResult got = runVmm(prog, mem, c.cfg);
            EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem))
                << c.name << " seed " << seed;
        }
    }
}

} // namespace
} // namespace cdvm
