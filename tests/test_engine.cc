/**
 * @file
 * Engine-layer tests: named configurations, the code-cache manager's
 * flush-on-full behaviour (chains reset, stale translations
 * unreachable, execution still correct), VM.be functional parity with
 * VM.soft, and the StagedPipeline event stream feeding two consumers.
 */

#include <gtest/gtest.h>

#include "engine/backend.hh"
#include "engine/cache_mgr.hh"
#include "engine/engine_config.hh"
#include "engine/events.hh"
#include "engine/profile.hh"
#include "engine/staged_pipeline.hh"
#include "helpers.hh"
#include "workload/trace_gen.hh"
#include "x86/asm.hh"

namespace cdvm
{
namespace
{

using namespace cdvm::x86;

TEST(EngineConfig, ByNameRoundTrip)
{
    for (const std::string &n : engine::EngineConfig::names()) {
        std::optional<engine::EngineConfig> c =
            engine::EngineConfig::byName(n);
        ASSERT_TRUE(c.has_value()) << n;
        EXPECT_EQ(c->name, n);
    }
    EXPECT_FALSE(engine::EngineConfig::byName("vm.bogus").has_value());
}

TEST(EngineConfig, NamedConfigsComposeDistinctStrategies)
{
    engine::EngineConfig soft = engine::EngineConfig::vmSoft();
    EXPECT_EQ(soft.cold, engine::ColdKind::SoftwareBbt);
    EXPECT_EQ(soft.detector, engine::DetectorKind::SoftwareCounters);

    engine::EngineConfig fe = engine::EngineConfig::vmFe();
    EXPECT_EQ(fe.cold, engine::ColdKind::HardwareX86Mode);
    EXPECT_EQ(fe.detector, engine::DetectorKind::Bbb);

    engine::EngineConfig be = engine::EngineConfig::vmBe();
    EXPECT_EQ(be.cold, engine::ColdKind::XltAssistedBbt);
    EXPECT_EQ(be.detector, engine::DetectorKind::SoftwareCounters);

    engine::EngineConfig dual = engine::EngineConfig::vmDual();
    EXPECT_EQ(dual.cold, engine::ColdKind::XltAssistedBbt);
    EXPECT_EQ(dual.detector, engine::DetectorKind::Bbb);
}

/** Sink that records every event it sees. */
struct RecordingSink : engine::StageSink
{
    std::vector<engine::StageEvent> events;
    void onEvent(const engine::StageEvent &e) override
    {
        events.push_back(e);
    }

    unsigned
    count(TracePhase stage) const
    {
        unsigned n = 0;
        for (const engine::StageEvent &e : events)
            if (e.stage == stage)
                ++n;
        return n;
    }
};

/** A tiny straight-line block ending in HLT, assembled at `at`. */
void
emitBlock(x86::Memory &mem, Addr at)
{
    Assembler as(at);
    as.movRI(EAX, 1);
    as.aluRI(Op::Add, EAX, 2);
    as.hlt();
    mem.writeBlock(at, as.finalize());
}

TEST(CodeCacheManager, FlushResetsChainsAndDropsStaleTranslations)
{
    x86::Memory mem;
    emitBlock(mem, 0x1000);
    emitBlock(mem, 0x2000);
    emitBlock(mem, 0x3000);

    engine::SoftwareBbtBackend backend(mem, 64);
    auto t1 = backend.translate(0x1000);
    auto t2 = backend.translate(0x2000);
    auto t3 = backend.translate(0x3000);
    ASSERT_TRUE(t1 && t2 && t3);

    auto align4 = [](u64 v) { return (v + 3) & ~u64{3}; };
    engine::EngineConfig cfg = engine::EngineConfig::vmSoft();
    // Room for exactly two blocks: the third install must flush.
    cfg.bbtCacheBytes = align4(t1->codeBytes) + align4(t2->codeBytes);

    engine::EngineStats st;
    engine::EventStream events;
    RecordingSink rec;
    events.attach(&rec);
    engine::CodeCacheManager ccm(mem, cfg, st, events);

    // A superblock in the (large) SBT arena chains into the BBT set.
    auto sb = backend.translate(0x1000);
    sb->kind = dbt::TransKind::Superblock;
    dbt::Translation *psb = ccm.install(std::move(sb)).trans;
    ASSERT_NE(psb, nullptr);

    auto r1 = ccm.install(std::move(t1));
    auto r2 = ccm.install(std::move(t2));
    EXPECT_FALSE(r1.flushed);
    EXPECT_FALSE(r2.flushed);
    ASSERT_TRUE(r1.trans && r2.trans);

    // Chain both within the BBT set and from the superblock into it.
    ASSERT_TRUE(r1.trans->addChain(0x2000, r2.trans->id));
    ASSERT_TRUE(psb->addChain(0x2000, r2.trans->id));
    EXPECT_EQ(ccm.resolve(r1.trans->chainedTo(0x2000)), r2.trans);
    EXPECT_EQ(ccm.resolve(psb->chainedTo(0x2000)), r2.trans);
    const dbt::TransId id2 = r2.trans->id;

    // Third install overflows the arena: flush-everything.
    auto r3 = ccm.install(std::move(t3));
    EXPECT_TRUE(r3.flushed);
    ASSERT_NE(r3.trans, nullptr);
    EXPECT_EQ(st.bbtCacheFlushes, 1u);
    EXPECT_EQ(rec.count(TracePhase::CacheFlush), 1u);

    // Stale basic blocks are unreachable; the superblock survives but
    // its chain into the doomed set was conservatively cleared.
    EXPECT_EQ(ccm.lookup(0x1000, dbt::TransKind::BasicBlock), nullptr);
    EXPECT_EQ(ccm.lookup(0x2000), nullptr);
    EXPECT_EQ(ccm.lookup(0x1000, dbt::TransKind::Superblock), psb);
    EXPECT_FALSE(psb->chainedTo(0x2000));
    EXPECT_EQ(ccm.lookup(0x3000), r3.trans);
    EXPECT_FALSE(r3.trans->chainedTo(0x1000));
    // A pre-flush handle into the doomed set resolves null forever.
    EXPECT_EQ(ccm.resolve(id2), nullptr);
}

TEST(CodeCacheManager, ExecutionCorrectAcrossForcedFlush)
{
    // Many distinct blocks through a cache that holds only a few:
    // every strategy must still match the interpreter while flushing.
    workload::ProgramParams pp;
    pp.seed = 1234;
    pp.numFuncs = 6;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 6;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory ref_mem;
    test::RunResult ref = test::runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted));

    for (const char *name : {"vm.soft", "vm.be"}) {
        engine::EngineConfig cfg =
            *engine::EngineConfig::byName(name);
        cfg.hotThreshold = 30;
        cfg.bbtCacheBytes = 1024; // force flush/retranslate cycles

        x86::Memory mem;
        vmm::VmmStats st;
        test::RunResult got = test::runVmm(prog, mem, cfg, &st);
        ASSERT_EQ(static_cast<int>(got.exit),
                  static_cast<int>(x86::Exit::Halted))
            << name;
        EXPECT_EQ(got.cpu.eip, ref.cpu.eip) << name;
        for (unsigned r = 0; r < x86::NUM_REGS; ++r)
            EXPECT_EQ(got.cpu.regs[r], ref.cpu.regs[r])
                << name << " reg " << r;
        EXPECT_GT(st.bbtCacheFlushes, 0u) << name;
        EXPECT_EQ(st.totalRetired(), ref.retired) << name;
    }
}

TEST(Engine, VmBeRetiresExactlyWhatVmSoftDoes)
{
    // The XLTx86-assisted BBT must form the same blocks as the
    // software BBT: identical retired totals, stage mix and state.
    for (u64 seed : {7u, 21u, 33u}) {
        workload::ProgramParams pp;
        pp.seed = seed;
        pp.mainIterations = 40;
        workload::Program prog = workload::generateProgram(pp);

        engine::EngineConfig soft = engine::EngineConfig::vmSoft();
        soft.hotThreshold = 30;
        engine::EngineConfig be = engine::EngineConfig::vmBe();
        be.hotThreshold = 30;

        x86::Memory mem_soft, mem_be;
        vmm::VmmStats st_soft, st_be;
        test::RunResult a = test::runVmm(prog, mem_soft, soft, &st_soft);
        test::RunResult b = test::runVmm(prog, mem_be, be, &st_be);

        ASSERT_EQ(static_cast<int>(a.exit), static_cast<int>(b.exit))
            << "seed " << seed;
        EXPECT_EQ(a.cpu.eip, b.cpu.eip) << "seed " << seed;
        EXPECT_EQ(st_soft.totalRetired(), st_be.totalRetired())
            << "seed " << seed;
        EXPECT_EQ(st_soft.insnsBbtCode, st_be.insnsBbtCode)
            << "seed " << seed;
        EXPECT_EQ(st_soft.insnsSbtCode, st_be.insnsSbtCode)
            << "seed " << seed;
        EXPECT_EQ(st_soft.bbtTranslations, st_be.bbtTranslations)
            << "seed " << seed;
        // And the hardware path really ran.
        EXPECT_GT(st_be.xltInsnsTranslated, 0u) << "seed " << seed;
    }
}

TEST(StagedPipeline, OneStateMachineTwoConsumers)
{
    // Two blocks in one region; the third touch of block 0 crosses the
    // hot threshold and optimizes the whole region.
    std::vector<workload::BlockInfo> blocks(2);
    blocks[0] = {0x1000, 10, 30, 0};
    blocks[1] = {0x1040, 10, 30, 0};

    engine::StagedParams p;
    p.translateCold = true;
    p.hasSbt = true;
    p.hotThreshold = 3;

    engine::EventStream events;
    engine::StageCounter counts;
    RecordingSink rec;
    events.attach(&counts);
    events.attach(&rec);

    engine::StagedPipeline pipe(blocks, p, events);
    pipe.touch(0); // translate + BbtExec
    pipe.touch(0); // BbtExec
    pipe.touch(0); // crosses threshold: SbtOptimize + SbtExec
    pipe.touch(1); // region already hot: SbtExec, never translated

    EXPECT_EQ(counts.bbtTranslations, 1u);
    EXPECT_EQ(counts.staticInsnsBbt, 10u);
    EXPECT_EQ(counts.sbtTranslations, 1u);
    EXPECT_EQ(counts.staticInsnsSbt, 20u); // whole region
    EXPECT_EQ(counts.insnsCold, 0u);
    EXPECT_EQ(counts.insnsBbt, 20u);
    EXPECT_EQ(counts.insnsSbt, 20u);
    EXPECT_EQ(counts.totalInsns(), 40u);

    // Both consumers saw the same stream.
    u64 rec_insns = 0;
    for (const engine::StageEvent &e : rec.events)
        if (!e.instant && e.stage != TracePhase::BbtTranslate &&
            e.stage != TracePhase::SbtOptimize)
            rec_insns += e.insns;
    EXPECT_EQ(rec_insns, counts.totalInsns());
    EXPECT_EQ(rec.count(TracePhase::BbtTranslate), 1u);
    EXPECT_EQ(rec.count(TracePhase::SbtOptimize), 1u);
    EXPECT_EQ(rec.count(TracePhase::Dispatch), 1u);

    // Translated stages carry a code-cache image.
    for (const engine::StageEvent &e : rec.events) {
        if (e.stage == TracePhase::BbtExec ||
            e.stage == TracePhase::SbtExec) {
            EXPECT_NE(e.codeAddr, 0u);
            EXPECT_GT(e.codeBytes, 0u);
        }
    }
}

TEST(StagedPipeline, ColdOnlyMachineNeverTranslates)
{
    std::vector<workload::BlockInfo> blocks(1);
    blocks[0] = {0x1000, 8, 24, 0};

    engine::StagedParams p;
    p.translateCold = false;
    p.hasSbt = false;

    engine::EventStream events;
    engine::StageCounter counts;
    events.attach(&counts);
    engine::StagedPipeline pipe(blocks, p, events);
    for (int i = 0; i < 5; ++i)
        pipe.touch(0);

    EXPECT_EQ(counts.bbtTranslations, 0u);
    EXPECT_EQ(counts.sbtTranslations, 0u);
    EXPECT_EQ(counts.insnsCold, 40u);
    EXPECT_EQ(counts.insnsBbt, 0u);
}

TEST(EngineProfile, BranchProfileIsBounded)
{
    engine::BranchProfile prof(4);
    for (Addr pc = 0x100; pc < 0x100 + 16; ++pc)
        prof.record(pc, true);
    EXPECT_LE(prof.size(), 4u);
    EXPECT_EQ(prof.capacity(), 4u);
    EXPECT_EQ(prof.evictions(), 12u);
}

TEST(EngineProfile, BoundedSetEvictsOnFull)
{
    engine::BoundedAddrSet set(4);
    for (Addr pc = 0x100; pc < 0x100 + 10; ++pc)
        set.insert(pc);
    EXPECT_LE(set.size(), 4u);
    EXPECT_EQ(set.evictions(), 6u);
    // The most recent insert always sticks.
    EXPECT_TRUE(set.contains(0x109));
}

} // namespace
} // namespace cdvm
