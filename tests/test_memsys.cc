/** @file Cache model tests: geometry, LRU, hierarchy latencies. */

#include <gtest/gtest.h>

#include "memsys/hierarchy.hh"

namespace cdvm::memsys
{
namespace
{

TEST(Cache, HitAfterMiss)
{
    Cache c(CacheParams{"t", 1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    Cache c(CacheParams{"t", 256, 2, 64, 1});
    // Three lines mapping to set 0: 0x0, 0x80, 0x100.
    c.access(0x000);
    c.access(0x080);
    EXPECT_TRUE(c.access(0x000));  // refresh 0x0; LRU is now 0x80
    c.access(0x100);               // evicts 0x80
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, ProbeDoesNotDisturb)
{
    Cache c(CacheParams{"t", 256, 2, 64, 1});
    c.access(0x000);
    c.access(0x080);
    // Probing 0x0 must not refresh it for LRU purposes.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(c.probe(0x000));
    c.access(0x100); // evicts LRU = 0x000
    EXPECT_FALSE(c.probe(0x000));
}

TEST(Cache, FlushAndInvalidate)
{
    Cache c(CacheParams{"t", 1024, 2, 64, 1});
    c.access(0x0);
    c.access(0x40);
    c.invalidate(0x0);
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x40));
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, SetIndexingIsolation)
{
    Cache c(CacheParams{"t", 64 * 1024, 2, 64, 2});
    EXPECT_EQ(c.numSets(), 512u);
    // Fill many distinct sets; all should still hit.
    for (Addr a = 0; a < 512 * 64; a += 64)
        c.access(a);
    for (Addr a = 0; a < 512 * 64; a += 64)
        EXPECT_TRUE(c.probe(a)) << a;
}

TEST(Hierarchy, LatenciesPerLevel)
{
    Hierarchy h; // Table 2 defaults
    // Cold: memory latency.
    EXPECT_EQ(h.access(0x1000, Side::Fetch), 168u);
    // Now L1I hit.
    EXPECT_EQ(h.access(0x1000, Side::Fetch), 2u);
    // Data side: the same line is in L2 (filled on the fetch miss).
    EXPECT_EQ(h.access(0x1000, Side::Data), 12u);
    // And now L1D hit.
    EXPECT_EQ(h.access(0x1000, Side::Data), 3u);
}

TEST(Hierarchy, SplitL1)
{
    Hierarchy h;
    h.access(0x2000, Side::Data); // fills L1D + L2
    // Fetch of the same line misses L1I but hits L2.
    EXPECT_EQ(h.access(0x2000, Side::Fetch), 12u);
}

TEST(Hierarchy, AccessRangeCountsLines)
{
    Hierarchy h;
    // 3 lines cold: 3 * 168.
    EXPECT_EQ(h.accessRange(0x3000, 192, Side::Fetch), 3u * 168u);
    // Same range again: 3 L1 hits.
    EXPECT_EQ(h.accessRange(0x3000, 192, Side::Fetch), 3u * 2u);
    // Unaligned range spanning two lines.
    EXPECT_EQ(h.accessRange(0x4030, 40, Side::Fetch), 2u * 168u);
    EXPECT_EQ(h.accessRange(0x5000, 0, Side::Fetch), 0u);
}

TEST(Hierarchy, FlushAllRestoresColdStart)
{
    Hierarchy h;
    h.access(0x1000, Side::Fetch);
    h.flushAll();
    EXPECT_EQ(h.access(0x1000, Side::Fetch), 168u);
}

} // namespace
} // namespace cdvm::memsys
