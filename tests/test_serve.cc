/**
 * @file
 * Cross-process image serving (serve/) and the MapSource storage layer
 * under it (dbt/mapsource).
 *
 * Storage: the same image blob behind all three MapSource backings --
 * owned buffer, private file map, shared fd map -- parses to identical
 * records and installs bit-identically, with translations pointing
 * INTO the backing (never copied out of it); page-residency counters
 * stay sane across backings.
 *
 * Serving: a real ImageHost on a Unix socket hands its sealed
 * generation to an ImageClient over SCM_RIGHTS; a VM bound to the
 * client endpoint warm-boots zero-copy and retires identically to the
 * interpreter. Publishing a new generation never invalidates a held
 * one (kernel-side lifetime). Failure policy is fall-back-to-cold:
 * a missing daemon or a garbled handshake leaves acquire() null and
 * the VM boots cold, never crashes.
 *
 * Durability: the atomic save path (temp + fsync + rename) never
 * exposes a torn file to a concurrent reader, and I/O failures carry
 * errno detail instead of collapsing into Truncated.
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbt/image.hh"
#include "dbt/mapsource.hh"
#include "dbt/persist.hh"
#include "engine/cache_mgr.hh"
#include "engine/warm_start.hh"
#include "helpers.hh"
#include "serve/image_client.hh"
#include "serve/image_host.hh"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cdvm
{
namespace
{

using test::RunResult;
using test::runInterp;
using test::sameOutcome;

vmm::VmmConfig
cfgSoft()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.hotThreshold = 30;
    return c;
}

workload::Program
testProgram(u64 seed = 7)
{
    workload::ProgramParams pp;
    pp.seed = seed;
    return workload::generateProgram(pp);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Run a program cold and capture its translation map. */
dbt::Repository
capturedRepo(const workload::Program &prog, x86::Memory &mem)
{
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(mem, cfgSoft());
    vm.run(cpu, 10'000'000);
    return dbt::capture(vm.translations(), mem);
}

std::vector<u8>
builtImage(const dbt::Repository &repo, u64 generation = 1)
{
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{0, generation});
    b.add(repo);
    return b.build();
}

/** A private install target: guest memory + the engine structures a
 *  warm install writes into. */
struct InstallTarget
{
    x86::Memory mem;
    engine::EngineConfig cfg = cfgSoft();
    engine::EngineStats stats;
    engine::EventStream events;
    engine::BranchProfile prof;
    engine::CodeCacheManager ccm{mem, cfg, stats, events};

    explicit InstallTarget(const workload::Program &prog)
    {
        prog.loadInto(mem);
    }
};

/** Run a warm boot through an endpoint binding and compare to ref. */
void
expectWarmBootMatches(const workload::Program &prog,
                      const RunResult &ref, x86::Memory &ref_mem,
                      std::shared_ptr<dbt::ImageEndpoint> endpoint,
                      bool expect_warm)
{
    engine::SharedServices svc;
    svc.imageEndpoint = std::move(endpoint);
    x86::Memory mem;
    prog.loadInto(mem);
    RunResult got;
    got.cpu = prog.initialState();
    vmm::Vmm vm(mem, cfgSoft(), svc);
    got.exit = vm.run(got.cpu, 10'000'000);
    got.retired = got.cpu.icount;
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem));
    if (expect_warm) {
        EXPECT_GT(vm.stats().warmInstalled, 0u);
        EXPECT_EQ(vm.stats().warmBodyCopies, 0u);
        EXPECT_GT(vm.stats().warmMappedBytes, 0u);
    } else {
        EXPECT_EQ(vm.stats().warmInstalled, 0u);
    }
}

// ---------------------------------------------------------------------
// MapSource: one blob, three backings
// ---------------------------------------------------------------------

TEST(MapSource, BackingsParseAndInstallIdentically)
{
    workload::Program prog = testProgram();
    x86::Memory pmem;
    const dbt::Repository repo = capturedRepo(prog, pmem);
    const std::vector<u8> blob = builtImage(repo);
    const std::string path = tempPath("mapsource_eq.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, blob));

    dbt::TransImage owned;
    ASSERT_EQ(dbt::TransImage::adopt(blob, owned),
              dbt::LoadError::None);
    EXPECT_EQ(owned.backingKind(), dbt::MapSource::Kind::OwnedBuffer);
    EXPECT_FALSE(owned.isMapped());

    dbt::TransImage filemap;
    ASSERT_EQ(dbt::TransImage::load(path, filemap),
              dbt::LoadError::None);
#ifdef __unix__
    EXPECT_EQ(filemap.backingKind(), dbt::MapSource::Kind::FileMap);
    EXPECT_TRUE(filemap.isMapped());

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    dbt::TransImage fdmap;
    ASSERT_EQ(dbt::TransImage::loadFd(::fileno(f), fdmap),
              dbt::LoadError::None);
    std::fclose(f); // the mapping outlives the descriptor
    EXPECT_EQ(fdmap.backingKind(), dbt::MapSource::Kind::SharedFd);
    EXPECT_TRUE(fdmap.isMapped());

    const dbt::TransImage *imgs[] = {&owned, &filemap, &fdmap};
#else
    const dbt::TransImage *imgs[] = {&owned, &filemap};
#endif

    engine::WarmStartReport first;
    for (const dbt::TransImage *img : imgs) {
        EXPECT_EQ(img->header().checksum, owned.header().checksum);
        ASSERT_EQ(img->recordCount(), owned.recordCount());
        EXPECT_EQ(img->sizeBytes(), blob.size());

        InstallTarget t(prog);
        const engine::WarmStartReport r = engine::warmStartInstall(
            *img, t.mem, t.ccm, t.prof);
        ASSERT_GT(r.installed, 0u);
        EXPECT_EQ(r.bodyCopies, 0u)
            << dbt::MapSource::kindName(img->backingKind());
        if (img == &owned)
            first = r;
        EXPECT_EQ(r.installed, first.installed);
        EXPECT_EQ(r.installedInsns, first.installedInsns);
        EXPECT_EQ(r.relocations, first.relocations);

        // Views point into THIS backing, not a copy of it.
        const u8 *lo = reinterpret_cast<const u8 *>(&img->header());
        for (std::size_t i = 0; i < img->recordCount(); ++i) {
            const dbt::TransImage::RecordView v = img->record(i);
            const dbt::Translation *t2 = t.ccm.lookup(
                v.hdr->entryPc,
                static_cast<dbt::TransKind>(v.hdr->kind));
            ASSERT_NE(t2, nullptr) << i;
            const u8 *code =
                reinterpret_cast<const u8 *>(t2->code().data());
            EXPECT_TRUE(code >= lo && code < lo + img->sizeBytes())
                << "record " << i << " body copied out of the "
                << dbt::MapSource::kindName(img->backingKind())
                << " backing";
        }
    }
    std::remove(path.c_str());
}

TEST(MapSource, ResidencyCountersSane)
{
    workload::Program prog = testProgram(11);
    x86::Memory pmem;
    const std::vector<u8> blob =
        builtImage(capturedRepo(prog, pmem));
    const std::string path = tempPath("mapsource_res.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, blob));

    dbt::TransImage owned;
    ASSERT_EQ(dbt::TransImage::adopt(blob, owned),
              dbt::LoadError::None);
    const dbt::MapResidency ores = owned.residency();
    EXPECT_GT(ores.pagesTotal, 0u);
    EXPECT_EQ(ores.pagesResident, ores.pagesTotal); // heap is resident
    EXPECT_EQ(ores.pagesShared, 0u);

    dbt::TransImage mapped;
    ASSERT_EQ(dbt::TransImage::load(path, mapped),
              dbt::LoadError::None);
    const dbt::MapResidency mres = mapped.residency();
    EXPECT_EQ(mres.pagesTotal, ores.pagesTotal);
    EXPECT_LE(mres.pagesResident, mres.pagesTotal);
    EXPECT_LE(mres.pagesShared, mres.pagesResident);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Error detail (the mmap/fread audit): errno survives, typed errors
// ---------------------------------------------------------------------

TEST(Persist, IoErrorsCarryErrnoDetail)
{
    dbt::TransImage img;
    EXPECT_EQ(dbt::TransImage::load("/nonexistent/dir/no.cdvmimg",
                                    img),
              dbt::LoadError::Io);
    EXPECT_EQ(dbt::lastIoErrno(), ENOENT);
    const std::string detail =
        dbt::loadErrorDetail(dbt::LoadError::Io);
    EXPECT_NE(detail.find("No such file"), std::string::npos)
        << detail;

    // Saves report failures the same way (unwritable directory).
    const std::vector<u8> bytes{1, 2, 3};
    EXPECT_FALSE(dbt::atomicWriteFile("/nonexistent/dir/out", bytes));
    EXPECT_EQ(dbt::lastIoErrno(), ENOENT);
}

TEST(Persist, AtomicSaveNeverTearsConcurrentReaders)
{
    workload::Program prog = testProgram(13);
    x86::Memory pmem;
    const dbt::Repository repo = capturedRepo(prog, pmem);
    const std::vector<u8> a = builtImage(repo, 1);
    const std::vector<u8> b = builtImage(repo, 2);
    ASSERT_NE(a, b); // distinct generations -> distinct bytes
    const std::string path = tempPath("atomic_save.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, a));

    std::atomic<bool> stop{false};
    std::atomic<unsigned> torn{0}, loads{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            dbt::TransImage img;
            // Atomic rename: a reader sees the OLD complete file or
            // the NEW complete file, never a truncated/mixed one.
            if (dbt::TransImage::load(path, img) !=
                dbt::LoadError::None)
                ++torn;
            ++loads;
        }
    });
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(dbt::TransImage::save(path, i & 1 ? b : a));
    stop = true;
    reader.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(loads.load(), 0u);
    std::remove(path.c_str());
}

#ifdef __unix__

// ---------------------------------------------------------------------
// Serving: host daemon + client over a real Unix socket
// ---------------------------------------------------------------------

TEST(Serve, FdPassingRoundTrip)
{
    workload::Program prog = testProgram(17);
    x86::Memory pmem;
    const std::vector<u8> blob =
        builtImage(capturedRepo(prog, pmem));
    const std::string sock = tempPath("serve_rt.sock");

    serve::ImageHost host;
    ASSERT_TRUE(host.publish(blob)) << host.lastError();
    ASSERT_TRUE(host.start(sock)) << host.lastError();
    EXPECT_TRUE(host.running());

    auto client = std::make_shared<serve::ImageClient>();
    ASSERT_TRUE(client->connect(sock)) << client->lastError();
    const auto img = client->acquire();
    ASSERT_NE(img, nullptr);
    EXPECT_EQ(client->generation(), host.generation());
    EXPECT_EQ(img->backingKind(), dbt::MapSource::Kind::SharedFd);
    EXPECT_TRUE(img->isMapped());
    EXPECT_EQ(img->sizeBytes(), blob.size());
    // Byte-identical to the host's own view of the generation.
    EXPECT_EQ(img->header().checksum,
              host.acquire()->header().checksum);
    EXPECT_EQ(img->recordCount(), host.acquire()->recordCount());

    // A VM bound to the client endpoint warm-boots zero-copy and
    // retires exactly like the interpreter.
    x86::Memory ref_mem;
    const RunResult ref = runInterp(prog, ref_mem);
    expectWarmBootMatches(prog, ref, ref_mem, client, true);

    host.stop();
    EXPECT_FALSE(host.running());
    const serve::ImageHost::Stats st = host.stats();
    EXPECT_GE(st.publishes, 1u);
    EXPECT_GE(st.clientsServed, 1u);
    EXPECT_GE(st.imagesSent, 1u);
    EXPECT_EQ(st.badRequests, 0u);
}

TEST(Serve, PublishNeverInvalidatesHeldGenerations)
{
    workload::Program prog = testProgram(19);
    x86::Memory pmem;
    const dbt::Repository repo = capturedRepo(prog, pmem);
    const std::string sock = tempPath("serve_gen.sock");

    serve::ImageHost host;
    ASSERT_TRUE(host.publish(builtImage(repo, 1)));
    ASSERT_TRUE(host.start(sock)) << host.lastError();

    serve::ImageClient client;
    ASSERT_TRUE(client.connect(sock)) << client.lastError();
    const auto held = client.acquire();
    ASSERT_NE(held, nullptr);
    const u64 held_gen = client.generation();
    const u64 held_checksum = held->header().checksum;

    // Writer publishes a new generation; the host's fd for the old
    // sealed object is closed.
    ASSERT_TRUE(host.publish(builtImage(repo, 2)));
    ASSERT_TRUE(client.refresh()) << client.lastError();
    const auto fresh = client.acquire();
    ASSERT_NE(fresh, nullptr);
    EXPECT_GT(client.generation(), held_gen);
    EXPECT_NE(fresh.get(), held.get());

    // The held generation stays fully readable and installable: the
    // kernel keeps the sealed object alive while our mapping does.
    EXPECT_EQ(held->header().checksum, held_checksum);
    InstallTarget t(prog);
    const engine::WarmStartReport r =
        engine::warmStartInstall(*held, t.mem, t.ccm, t.prof);
    EXPECT_GT(r.installed, 0u);
    EXPECT_EQ(r.bodyCopies, 0u);
    host.stop();
}

TEST(Serve, EmptyHostHandshakesWithNoImage)
{
    const std::string sock = tempPath("serve_empty.sock");
    serve::ImageHost host;
    ASSERT_TRUE(host.start(sock)) << host.lastError();

    serve::ImageClient client;
    // The daemon is up with nothing published: the handshake succeeds
    // and the client stays cold (null acquire).
    EXPECT_TRUE(client.connect(sock)) << client.lastError();
    EXPECT_EQ(client.acquire(), nullptr);

    // A publish becomes visible on the next refresh.
    workload::Program prog = testProgram(23);
    x86::Memory pmem;
    ASSERT_TRUE(host.publish(builtImage(capturedRepo(prog, pmem))));
    ASSERT_TRUE(client.refresh()) << client.lastError();
    EXPECT_NE(client.acquire(), nullptr);
    host.stop();
}

TEST(Serve, DaemonAbsentFallsBackCold)
{
    auto client = std::make_shared<serve::ImageClient>();
    EXPECT_FALSE(client->connect(tempPath("serve_nobody.sock")));
    EXPECT_EQ(client->acquire(), nullptr);
    EXPECT_FALSE(client->lastError().empty());

    // A VM bound to the dead endpoint boots cold and still retires
    // exactly like the interpreter: serving is an accelerator, never
    // a dependency.
    workload::Program prog = testProgram(29);
    x86::Memory ref_mem;
    const RunResult ref = runInterp(prog, ref_mem);
    expectWarmBootMatches(prog, ref, ref_mem, client, false);
}

TEST(Serve, GarbledHandshakeFallsBackCold)
{
    const std::string sock = tempPath("serve_garbled.sock");
    std::remove(sock.c_str());

    // A fake daemon that accepts and answers with garbage.
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(sock.size(), sizeof addr.sun_path);
    std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr),
              0);
    ASSERT_EQ(::listen(lfd, 1), 0);
    std::thread fake([lfd] {
        const int c = ::accept(lfd, nullptr, nullptr);
        if (c >= 0) {
            char junk[64];
            std::memset(junk, 0x5a, sizeof junk);
            [[maybe_unused]] ssize_t n =
                ::write(c, junk, sizeof junk);
            ::close(c);
        }
    });

    serve::ImageClient client;
    EXPECT_FALSE(client.connect(sock));
    EXPECT_EQ(client.acquire(), nullptr);
    EXPECT_FALSE(client.lastError().empty());

    fake.join();
    ::close(lfd);
    std::remove(sock.c_str());
}

#endif // __unix__

} // namespace
} // namespace cdvm
