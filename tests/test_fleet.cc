/**
 * @file
 * Multi-tenant fleet tests: the crash-hook registry, per-context stat
 * subtrees, the shared SBT pool under many producers, arrival curves,
 * scheduling policies, deterministic seeding, and the single-context
 * equivalence + warm-vs-cold properties of FleetServer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/threadpool.hh"
#include "fleet/arrival.hh"
#include "fleet/fleet.hh"
#include "fleet/scheduler.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

using namespace cdvm;

namespace
{

/** The fleet tests' standard small workload shape (short runs). */
workload::ProgramParams
smallShape(u64 seed)
{
    workload::ProgramParams p;
    p.seed = seed;
    p.numFuncs = 5;
    p.blocksPerFunc = 3;
    p.insnsPerBlock = 8;
    p.mainIterations = 2;
    return p;
}

/** Run a plain Vmm on prog until >= target retired at a HLT. */
x86::CpuState
runToTarget(vmm::Vmm &vm, const workload::Program &prog, u64 target)
{
    x86::CpuState cpu = prog.initialState();
    for (;;) {
        const x86::Exit e =
            vm.run(cpu, target - vm.stats().totalRetired());
        if (e == x86::Exit::Halted) {
            if (vm.stats().totalRetired() >= target)
                return cpu;
            cpu = prog.initialState();
        } else {
            EXPECT_EQ(e, x86::Exit::None);
        }
    }
}

// --- crash-hook registry -------------------------------------------

TEST(CrashHooks, AddRunRemove)
{
    const std::size_t base = crashHookCount();
    int a = 0, b = 0;
    const CrashHookId ha = addCrashHook([&] { ++a; });
    const CrashHookId hb = addCrashHook([&] { ++b; });
    EXPECT_NE(ha, NO_CRASH_HOOK);
    EXPECT_NE(ha, hb);
    EXPECT_EQ(crashHookCount(), base + 2);

    runCrashHooks();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);

    removeCrashHook(ha);
    EXPECT_EQ(crashHookCount(), base + 1);
    runCrashHooks();
    EXPECT_EQ(a, 1); // removed: not run again
    EXPECT_EQ(b, 2);

    removeCrashHook(hb);
    EXPECT_EQ(crashHookCount(), base);
    // Unknown / null ids are no-ops.
    removeCrashHook(hb);
    removeCrashHook(NO_CRASH_HOOK);
    EXPECT_EQ(addCrashHook(nullptr), NO_CRASH_HOOK);
    EXPECT_EQ(crashHookCount(), base);
}

TEST(CrashHooks, RecursionGuard)
{
    int runs = 0;
    const CrashHookId h = addCrashHook([&] {
        ++runs;
        runCrashHooks(); // a hook that panics again must not recurse
    });
    runCrashHooks();
    EXPECT_EQ(runs, 1);
    removeCrashHook(h);
}

TEST(CrashHooks, EveryLiveVmmRegistersItsOwn)
{
    const std::size_t base = crashHookCount();
    workload::Program prog = workload::generateProgram(smallShape(3));

    x86::Memory m1, m2;
    prog.loadInto(m1);
    prog.loadInto(m2);
    auto v1 = std::make_unique<vmm::Vmm>(m1);
    EXPECT_EQ(crashHookCount(), base + 1);
    auto v2 = std::make_unique<vmm::Vmm>(m2);
    EXPECT_EQ(crashHookCount(), base + 2);
    v1.reset(); // destroying one context must not strand the other's
    EXPECT_EQ(crashHookCount(), base + 1);
    v2.reset();
    EXPECT_EQ(crashHookCount(), base);
}

// --- per-context stat subtrees -------------------------------------

TEST(StatMerge, NestsEveryKindUnderPrefix)
{
    StatRegistry src;
    src.set("vmm.retired", 42.0, "scalar");
    src.gauge("vmm.rate", [] { return 2.5; }, "gauge");
    RunningStat &rs = src.running("vmm.lat", "running");
    rs.add(1.0);
    rs.add(3.0);
    src.histogram("vmm.hist", 2.0, 8, "hist").add(4.0);

    StatRegistry dst;
    dst.set("fleet.contexts", 2.0, "fleet scalar");
    dst.merge(src, "ctx.0");
    dst.merge(src, "ctx.1");

    EXPECT_DOUBLE_EQ(dst.value("ctx.0.vmm.retired"), 42.0);
    // Gauges freeze to their value at merge time.
    EXPECT_DOUBLE_EQ(dst.value("ctx.1.vmm.rate"), 2.5);
    EXPECT_TRUE(dst.has("ctx.0.vmm.lat"));
    EXPECT_TRUE(dst.has("ctx.1.vmm.hist"));
    EXPECT_DOUBLE_EQ(dst.value("fleet.contexts"), 2.0);

    // Re-merging the same prefix overwrites rather than accumulates.
    src.set("vmm.retired", 43.0, "scalar");
    dst.merge(src, "ctx.0");
    EXPECT_DOUBLE_EQ(dst.value("ctx.0.vmm.retired"), 43.0);

    // The JSON dump nests the subtree by path segment.
    const std::string js = dst.dumpJson();
    EXPECT_NE(js.find("\"ctx\""), std::string::npos);
    EXPECT_NE(js.find("\"retired\""), std::string::npos);
}

// --- arrival curves -------------------------------------------------

TEST(Arrival, StormAllAtZero)
{
    fleet::ArrivalCurve c;
    const std::vector<u64> at = c.admitClocks(5, 99);
    ASSERT_EQ(at.size(), 5u);
    for (u64 t : at)
        EXPECT_EQ(t, 0u);
}

TEST(Arrival, StepBatches)
{
    auto c = fleet::ArrivalCurve::parse("step:2@1000");
    ASSERT_TRUE(c.has_value());
    const std::vector<u64> at = c->admitClocks(5, 1);
    const std::vector<u64> want = {0, 0, 1000, 1000, 2000};
    EXPECT_EQ(at, want);
    EXPECT_EQ(c->describe(), "step:2@1000");
}

TEST(Arrival, PoissonDeterministicNondecreasing)
{
    auto c = fleet::ArrivalCurve::parse("poisson:4");
    ASSERT_TRUE(c.has_value());
    const std::vector<u64> a = c->admitClocks(64, 7);
    const std::vector<u64> b = c->admitClocks(64, 7);
    EXPECT_EQ(a, b); // pure function of (curve, n, seed)
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1], a[i]);
    EXPECT_NE(a, c->admitClocks(64, 8));
}

TEST(Arrival, ParseRejectsMalformed)
{
    EXPECT_FALSE(fleet::ArrivalCurve::parse("gauss").has_value());
    EXPECT_FALSE(fleet::ArrivalCurve::parse("poisson:0").has_value());
    EXPECT_FALSE(fleet::ArrivalCurve::parse("step:0@5").has_value());
    EXPECT_FALSE(fleet::ArrivalCurve::parse("step:3@").has_value());
    EXPECT_FALSE(fleet::ArrivalCurve::parse("step:3@9x").has_value());
}

// --- scheduler ------------------------------------------------------

TEST(Scheduler, RoundRobinRotates)
{
    fleet::FleetScheduler s(fleet::SchedPolicy::RoundRobin, 100);
    const std::vector<u64> rem = {10, 10, 10};
    for (unsigned round = 0; round < 3; ++round)
        for (std::size_t want = 0; want < rem.size(); ++want) {
            const auto d = s.next(rem);
            EXPECT_EQ(d.slot, want);
            EXPECT_EQ(d.sliceInsns, 100u);
        }
    EXPECT_EQ(s.slices(), 9u);
}

TEST(Scheduler, LoadRatioScalesAndClamps)
{
    fleet::FleetScheduler s(fleet::SchedPolicy::LoadRatio, 1000);
    // Slot 0 holds ~5x the mean remaining work; the rest are nearly
    // done, far below a quarter of the mean.
    const std::vector<u64> rem = {1'000'000, 10, 10, 10, 10};
    const auto d0 = s.next(rem);
    EXPECT_EQ(d0.slot, 0u);
    EXPECT_EQ(d0.sliceInsns, 4000u); // clamped at 4x quantum
    const auto d1 = s.next(rem);
    EXPECT_EQ(d1.slot, 1u);
    EXPECT_EQ(d1.sliceInsns, 250u); // clamped at quantum/4

    // Balanced work degenerates to the plain quantum.
    fleet::FleetScheduler t(fleet::SchedPolicy::LoadRatio, 1000);
    const std::vector<u64> even = {500, 500, 500};
    EXPECT_EQ(t.next(even).sliceInsns, 1000u);
}

TEST(Scheduler, PolicyNames)
{
    EXPECT_EQ(fleet::schedPolicyByName("rr"),
              fleet::SchedPolicy::RoundRobin);
    EXPECT_EQ(fleet::schedPolicyByName("loadratio"),
              fleet::SchedPolicy::LoadRatio);
    EXPECT_FALSE(fleet::schedPolicyByName("fifo").has_value());
}

// --- deterministic seeding -----------------------------------------

TEST(FleetSeeding, DerivedSeedsAreStableAndDistinct)
{
    EXPECT_EQ(fleet::deriveSeed(1, 0), fleet::deriveSeed(1, 0));
    EXPECT_NE(fleet::deriveSeed(1, 0), fleet::deriveSeed(1, 1));
    EXPECT_NE(fleet::deriveSeed(1, 0), fleet::deriveSeed(2, 0));
    EXPECT_NE(fleet::deriveSeed(0, 0), 0u); // never the zero seed
}

// --- shared SBT pool under many producers --------------------------

TEST(SharedPool, BackPressureLeavesSeedsColdPerContext)
{
    // Two tenants over one 1-worker pool with a 1-deep queue: rejects
    // are expected, counted per engine, and must only degrade the
    // rejecting context to its cold path -- never corrupt state.
    workload::Program p0 = workload::generateProgram(smallShape(11));
    workload::Program p1 = workload::generateProgram(smallShape(12));

    engine::EngineConfig cfg = fleet::tenantEngineConfig({});
    cfg.asyncTranslators = 1;
    cfg.asyncQueueCap = 1;
    cfg.hotThreshold = 50; // request storms
    ThreadPool pool(1, 1);
    engine::SharedServices svc;
    svc.sbtPool = &pool;

    x86::Memory m0, m1;
    p0.loadInto(m0);
    p1.loadInto(m1);
    vmm::Vmm v0(m0, cfg, svc);
    vmm::Vmm v1(m1, cfg, svc);

    const u64 target = 400'000;
    const x86::CpuState end0 = runToTarget(v0, p0, target);
    const x86::CpuState end1 = runToTarget(v1, p1, target);

    ASSERT_NE(v0.asyncSbtEngine(), nullptr);
    EXPECT_TRUE(v0.asyncSbtEngine()->sharedPool());

    // Differential reference: the same programs, synchronous.
    engine::EngineConfig sync = cfg;
    sync.asyncTranslators = 0;
    x86::Memory r0, r1;
    p0.loadInto(r0);
    p1.loadInto(r1);
    vmm::Vmm w0(r0, sync);
    vmm::Vmm w1(r1, sync);
    const x86::CpuState ref0 = runToTarget(w0, p0, target);
    const x86::CpuState ref1 = runToTarget(w1, p1, target);

    EXPECT_EQ(end0.regs, ref0.regs);
    EXPECT_EQ(end0.eip, ref0.eip);
    EXPECT_EQ(end1.regs, ref1.regs);
    EXPECT_EQ(end1.eip, ref1.eip);
    // Architected retirement truth: both runs end at a HLT of the
    // same deterministic program, with the work done. (The per-mode
    // insn counters are NOT compared exactly: which requests the
    // 1-deep queue rejects depends on host timing, and superblock
    // side-exit accounting differs from the BBT path, so async-vs-
    // sync coverage differences legitimately shift totalRetired by a
    // rerun -- equality here made the test flaky under load.)
    EXPECT_GE(v0.stats().totalRetired(), target);
    EXPECT_GE(w0.stats().totalRetired(), target);
    EXPECT_GE(v1.stats().totalRetired(), target);
    EXPECT_GE(w1.stats().totalRetired(), target);

    // The queue-reject counters are per engine, not pool-global.
    const u64 rej0 = v0.stats().asyncSbtQueueRejects;
    const u64 rej1 = v1.stats().asyncSbtQueueRejects;
    EXPECT_EQ(rej0, v0.asyncSbtEngine()->rejected());
    EXPECT_EQ(rej1, v1.asyncSbtEngine()->rejected());
    EXPECT_LE(rej0 + rej1, pool.rejectedFull());
}

TEST(SharedPool, ManyProducersOnePool)
{
    // A small fleet's worth of contexts hammering one 2-worker pool
    // concurrently with their own dispatch loops (the TSan target).
    ThreadPool pool(2, 4);
    engine::EngineConfig cfg = fleet::tenantEngineConfig({});
    cfg.asyncTranslators = 2;
    cfg.asyncQueueCap = 4;
    cfg.hotThreshold = 100;
    engine::SharedServices svc;
    svc.sbtPool = &pool;

    constexpr unsigned N = 6;
    std::vector<workload::Program> progs;
    std::vector<std::unique_ptr<x86::Memory>> mems;
    std::vector<std::unique_ptr<vmm::Vmm>> vms;
    for (unsigned i = 0; i < N; ++i) {
        progs.push_back(
            workload::generateProgram(smallShape(100 + i)));
        mems.push_back(std::make_unique<x86::Memory>());
        progs[i].loadInto(*mems[i]);
        vms.push_back(
            std::make_unique<vmm::Vmm>(*mems[i], cfg, svc));
    }
    // Interleave slices round-robin so requests from all contexts
    // overlap in the pool.
    std::vector<x86::CpuState> cpus;
    for (unsigned i = 0; i < N; ++i)
        cpus.push_back(progs[i].initialState());
    const u64 target = 120'000;
    for (bool any = true; any;) {
        any = false;
        for (unsigned i = 0; i < N; ++i) {
            if (vms[i]->stats().totalRetired() >= target)
                continue;
            any = true;
            const x86::Exit e = vms[i]->run(cpus[i], 10'000);
            if (e == x86::Exit::Halted)
                cpus[i] = progs[i].initialState();
            else
                ASSERT_EQ(e, x86::Exit::None);
        }
    }
    for (unsigned i = 0; i < N; ++i)
        EXPECT_GE(vms[i]->stats().totalRetired(), target);
}

// --- FleetServer ----------------------------------------------------

TEST(Fleet, SingleContextMatchesPlainVmm)
{
    fleet::FleetConfig cfg;
    cfg.contexts = 1;
    cfg.workloads = 1;
    cfg.fleetSeed = 5;
    cfg.targetInsns = 200'000;
    cfg.milestoneInsns = 100'000;
    cfg.workloadParams = smallShape(0); // seed overridden per class

    fleet::FleetServer server(cfg);
    const fleet::FleetResult fr = server.run();
    ASSERT_EQ(fr.contexts.size(), 1u);
    const fleet::ContextResult &c = fr.contexts[0];
    EXPECT_TRUE(c.ok);
    EXPECT_EQ(fr.completed, 1u);

    // The same tenant, undisturbed: identical program, identical
    // (shrunken) engine config, run in one big slice.
    workload::ProgramParams p = cfg.workloadParams;
    p.seed = fleet::deriveSeed(cfg.fleetSeed, 0);
    EXPECT_EQ(c.programSeed, p.seed);
    workload::Program prog = workload::generateProgram(p);
    x86::Memory mem;
    prog.loadInto(mem);
    vmm::Vmm vm(mem, fleet::tenantEngineConfig(cfg.engineCfg));
    runToTarget(vm, prog, cfg.targetInsns);

    // Time slicing must not change what was emulated.
    EXPECT_EQ(c.retired, vm.stats().totalRetired());
    EXPECT_EQ(c.bbtTranslations, vm.stats().bbtTranslations);
    EXPECT_EQ(c.sbtTranslations, vm.stats().sbtTranslations);
}

TEST(Fleet, DeterministicAcrossRuns)
{
    fleet::FleetConfig cfg;
    cfg.contexts = 6;
    cfg.workloads = 3;
    cfg.fleetSeed = 9;
    cfg.targetInsns = 120'000;
    cfg.milestoneInsns = 60'000;
    cfg.arrival = *fleet::ArrivalCurve::parse("poisson:8");
    cfg.policy = fleet::SchedPolicy::LoadRatio;
    cfg.workloadParams = smallShape(0);

    fleet::FleetServer s1(cfg);
    fleet::FleetServer s2(cfg);
    const fleet::FleetResult a = s1.run();
    const fleet::FleetResult b = s2.run();
    EXPECT_EQ(a.fleetClock, b.fleetClock);
    EXPECT_EQ(a.totalRetired, b.totalRetired);
    EXPECT_EQ(a.slices, b.slices);
    ASSERT_EQ(a.contexts.size(), b.contexts.size());
    for (std::size_t i = 0; i < a.contexts.size(); ++i) {
        EXPECT_EQ(a.contexts[i].milestoneClock,
                  b.contexts[i].milestoneClock);
        EXPECT_EQ(a.contexts[i].retired, b.contexts[i].retired);
        EXPECT_TRUE(a.contexts[i].ok);
    }
}

TEST(Fleet, PerContextStatSubtreesExport)
{
    fleet::FleetConfig cfg;
    cfg.contexts = 3;
    cfg.workloads = 2;
    cfg.targetInsns = 60'000;
    cfg.milestoneInsns = 30'000;
    cfg.workloadParams = smallShape(0);
    cfg.exportPerContext = true;

    fleet::FleetServer server(cfg);
    const fleet::FleetResult r = server.run();
    EXPECT_EQ(r.completed, 3u);

    StatRegistry reg;
    server.exportStats(reg);
    EXPECT_DOUBLE_EQ(reg.value("fleet.contexts"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("fleet.completed"), 3.0);
    EXPECT_GT(reg.value("fleet.retired_total"), 0.0);
    for (unsigned i = 0; i < 3; ++i) {
        const std::string pfx = "ctx." + std::to_string(i);
        EXPECT_TRUE(reg.has(pfx + ".vmm.insns.total")) << pfx;
        EXPECT_GT(reg.value(pfx + ".vmm.insns.total"), 0.0);
    }
    // Nested JSON carries the subtrees.
    const std::string js = reg.dumpJson();
    EXPECT_NE(js.find("\"ctx\""), std::string::npos);
    EXPECT_NE(js.find("\"fleet\""), std::string::npos);
}

TEST(Fleet, WarmBeatsColdP99)
{
    fleet::FleetConfig cfg;
    cfg.contexts = 8;
    cfg.workloads = 2;
    cfg.fleetSeed = 3;
    cfg.targetInsns = 400'000;
    cfg.milestoneInsns = 400'000;
    cfg.workloadParams = smallShape(0);

    fleet::FleetServer cold(cfg);
    const fleet::FleetResult cr = cold.run();
    EXPECT_EQ(cr.completed, cfg.contexts);
    EXPECT_EQ(cr.reachedMilestone, cfg.contexts);

    // Prime one repository per workload class, past the target so
    // the hot set is optimized.
    const engine::EngineConfig tcfg =
        fleet::tenantEngineConfig(cfg.engineCfg);
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        workload::ProgramParams p = cfg.workloadParams;
        p.seed = fleet::deriveSeed(cfg.fleetSeed, w);
        workload::Program prog = workload::generateProgram(p);
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, tcfg);
        runToTarget(vm, prog, 2 * cfg.targetInsns);
        cfg.warmRepos.push_back(
            std::make_shared<const dbt::Repository>(
                vm.captureWarmStart()));
    }

    fleet::FleetServer warm(cfg);
    const fleet::FleetResult wr = warm.run();
    EXPECT_EQ(wr.completed, cfg.contexts);
    EXPECT_EQ(wr.reachedMilestone, cfg.contexts);
    EXPECT_GT(wr.contexts[0].warmInstalled, 0u);

    // The tentpole gate, in miniature: warm p99 strictly faster.
    EXPECT_GT(wr.p99TimeToMilestone, 0.0);
    EXPECT_LT(wr.p99TimeToMilestone, cr.p99TimeToMilestone);
}

TEST(Fleet, SharedPoolFleetCompletes)
{
    // Fleet + shared async SBT pool end to end (TSan coverage of the
    // scheduler interleaving many engines over one pool).
    fleet::FleetConfig cfg;
    cfg.contexts = 6;
    cfg.workloads = 3;
    cfg.targetInsns = 100'000;
    cfg.milestoneInsns = 50'000;
    cfg.sharedPoolWorkers = 2;
    cfg.sharedPoolQueueCap = 4;
    cfg.workloadParams = smallShape(0);

    fleet::FleetServer server(cfg);
    const fleet::FleetResult r = server.run();
    EXPECT_EQ(r.completed + r.failed, cfg.contexts);
    EXPECT_EQ(r.failed, 0u);
    for (const fleet::ContextResult &c : r.contexts)
        EXPECT_GE(c.retired, cfg.targetInsns);
}

} // namespace
