/**
 * @file
 * Host fast-path tests: the flat translation table (tortured against a
 * std::unordered_map oracle), the dispatch lookaside cache's epoch
 * invalidation, the decoded-instruction cache's coherence with guest
 * code writes, and the fast-vs-legacy dispatch differential.
 */

#include <array>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/statreg.hh"
#include "dbt/lookup.hh"
#include "helpers.hh"
#include "x86/decode_cache.hh"

namespace cdvm
{
namespace
{

using namespace cdvm::x86;

std::unique_ptr<dbt::Translation>
makeTrans(Addr pc, dbt::TransKind kind)
{
    auto t = std::make_unique<dbt::Translation>();
    t->entryPc = pc;
    t->kind = kind;
    return t;
}

// --- decode cache ----------------------------------------------------

TEST(DecodeCache, HitsAfterFirstFetch)
{
    Memory mem;
    Assembler as(0x1000);
    as.movRI(EAX, 1);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    DecodeCache dc(64);
    const DecodeResult &a = dc.fetchDecode(mem, 0x1000);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(dc.misses(), 1u);
    const DecodeResult &b = dc.fetchDecode(mem, 0x1000);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(dc.hits(), 1u);
    EXPECT_EQ(b.insn.length, a.insn.length);
}

TEST(DecodeCache, CodeWriteInvalidates)
{
    Memory mem;
    Assembler as(0x1000);
    as.movRI(EAX, 0x11111111);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    DecodeCache dc(64);
    ASSERT_TRUE(dc.fetchDecode(mem, 0x1000).ok);
    ASSERT_TRUE(dc.fetchDecode(mem, 0x1000).ok); // cached
    EXPECT_EQ(dc.hits(), 1u);
    const u64 ver = mem.codeVersion();

    // Rewrite the mov's immediate in place: same page the cache
    // fetched through, so the write must bump the code version and
    // the next fetch must re-decode the new bytes.
    Assembler as2(0x1000);
    as2.movRI(EAX, 0x22222222);
    as2.hlt();
    mem.writeBlock(0x1000, as2.finalize());
    EXPECT_GT(mem.codeVersion(), ver);

    const DecodeResult &dr = dc.fetchDecode(mem, 0x1000);
    ASSERT_TRUE(dr.ok);
    ASSERT_TRUE(dr.insn.src.isImm());
    EXPECT_EQ(dr.insn.src.imm, 0x22222222);
    EXPECT_EQ(dc.misses(), 2u);
}

TEST(DecodeCache, DataWritesDoNotInvalidate)
{
    Memory mem;
    Assembler as(0x1000);
    as.movRI(EAX, 1);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    DecodeCache dc(64);
    ASSERT_TRUE(dc.fetchDecode(mem, 0x1000).ok);
    const u64 ver = mem.codeVersion();

    // Heavy store traffic to a pure data page: the common case that
    // must NOT flush cached decodes.
    for (u32 i = 0; i < 256; ++i)
        mem.write32(0x00800000 + 4 * i, i);
    EXPECT_EQ(mem.codeVersion(), ver);
    ASSERT_TRUE(dc.fetchDecode(mem, 0x1000).ok);
    EXPECT_EQ(dc.hits(), 1u);
    EXPECT_EQ(dc.misses(), 1u);
}

TEST(DecodeCache, FetchThroughHoleIsUncacheable)
{
    Memory mem;
    // A one-byte hlt at the very last byte of an otherwise untouched
    // page: the decoder's fetch window spills into the next,
    // unallocated page. That hole can't be marked as a code page, so
    // the decode must not be cached (a later write materializing the
    // page would not bump the code version).
    const Addr pc = 0x5000 + Memory::PAGE_SIZE - 1;
    mem.write8(pc, 0xF4); // hlt
    DecodeCache dc(64);
    ASSERT_TRUE(dc.fetchDecode(mem, pc).ok);
    ASSERT_TRUE(dc.fetchDecode(mem, pc).ok);
    EXPECT_EQ(dc.hits(), 0u);
    EXPECT_EQ(dc.misses(), 2u);

    // Materialize the next page; the window is now hole-free and the
    // decode becomes cacheable again.
    mem.write8(pc + 1, 0x90);
    ASSERT_TRUE(dc.fetchDecode(mem, pc).ok);
    ASSERT_TRUE(dc.fetchDecode(mem, pc).ok);
    EXPECT_EQ(dc.hits(), 1u);
}

TEST(DecodeCache, InterpreterSeesCodeRewrite)
{
    // End-to-end: an interpreter running through the decode cache must
    // execute rewritten code, not a stale cached decode.
    Memory mem;
    Assembler as(0x1000);
    as.movRI(EAX, 7);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    DecodeCache dc(256);
    CpuState cpu;
    cpu.eip = 0x1000;
    {
        Interpreter interp(cpu, mem, &dc);
        EXPECT_EQ(interp.run(100), Exit::Halted);
    }
    EXPECT_EQ(cpu.regs[EAX], 7u);

    Assembler as2(0x1000);
    as2.movRI(EAX, 9);
    as2.hlt();
    mem.writeBlock(0x1000, as2.finalize());

    cpu = CpuState{};
    cpu.eip = 0x1000;
    {
        Interpreter interp(cpu, mem, &dc);
        EXPECT_EQ(interp.run(100), Exit::Halted);
    }
    EXPECT_EQ(cpu.regs[EAX], 9u);
}

// --- dispatch lookaside ----------------------------------------------

TEST(Lookaside, NegativeCachingAndInstallRefresh)
{
    dbt::TranslationMap map(
        dbt::TranslationMap::Config{true, 64, 16});
    // Two misses on the same pc: the second is served by the
    // lookaside's negative entry but still counts as a lookup miss.
    EXPECT_EQ(map.lookup(0x100), nullptr);
    EXPECT_EQ(map.lookup(0x100), nullptr);
    EXPECT_EQ(map.lookups(), 2u);
    EXPECT_EQ(map.lookupMisses(), 2u);
    EXPECT_GE(map.lookasideHits(), 1u);

    // Installing at that pc must refresh the line: the negative entry
    // may not shadow the new translation.
    dbt::Translation *t =
        map.insert(makeTrans(0x100, dbt::TransKind::BasicBlock));
    EXPECT_EQ(map.lookup(0x100), t);
}

TEST(Lookaside, EpochInvalidationOnFlush)
{
    dbt::TranslationMap map(
        dbt::TranslationMap::Config{true, 64, 16});
    dbt::Translation *bb =
        map.insert(makeTrans(0x100, dbt::TransKind::BasicBlock));
    EXPECT_EQ(map.lookup(0x100), bb);
    EXPECT_EQ(map.lookup(0x100), bb); // lookaside-served
    EXPECT_GE(map.lookasideHits(), 1u);
    const u64 e0 = map.flushEpoch();

    // eraseKind bumps the epoch: every lookaside line filled before
    // the flush is stale by construction, so the dangling pointer in
    // it can never be returned.
    map.eraseKind(dbt::TransKind::BasicBlock);
    EXPECT_GT(map.flushEpoch(), e0);
    EXPECT_EQ(map.lookup(0x100), nullptr);

    dbt::Translation *sb =
        map.insert(makeTrans(0x100, dbt::TransKind::Superblock));
    EXPECT_EQ(map.lookup(0x100), sb);
    map.clear();
    EXPECT_GT(map.flushEpoch(), e0 + 1);
    EXPECT_EQ(map.lookup(0x100), nullptr);
    EXPECT_EQ(map.size(), 0u);
}

TEST(TranslationMap, OverwriteKeepsOldAliveUntilFlush)
{
    dbt::TranslationMap map;
    dbt::Translation *oldt =
        map.insert(makeTrans(0x100, dbt::TransKind::BasicBlock));
    dbt::Translation *other =
        map.insert(makeTrans(0x200, dbt::TransKind::BasicBlock));
    EXPECT_TRUE(other->addChain(0x100, oldt->id));
    const dbt::TransId old_id = oldt->id;

    dbt::Translation *newt =
        map.insert(makeTrans(0x100, dbt::TransKind::BasicBlock));
    EXPECT_EQ(map.overwrites(), 1u);
    EXPECT_EQ(map.numBasicBlocks(), 2u); // live count, not arena size
    EXPECT_EQ(map.lookup(0x100), newt);
    // The overwritten translation is unreachable through the table but
    // still owned by the arena: the chain handle into it keeps
    // resolving until the kind is flushed.
    EXPECT_EQ(map.resolve(other->chainedTo(0x100)), oldt);
    EXPECT_EQ(oldt->entryPc, 0x100u);

    map.eraseKind(dbt::TransKind::BasicBlock);
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.overwrites(), 1u);
    EXPECT_EQ(map.resolve(old_id), nullptr);
}

TEST(TranslationMap, StatsExportIncludesLookaside)
{
    dbt::TranslationMap map;
    map.insert(makeTrans(0x100, dbt::TransKind::BasicBlock));
    map.lookup(0x100);
    map.lookup(0x100);
    map.lookup(0x999);
    StatRegistry reg;
    map.exportStats(reg, "t");
    EXPECT_TRUE(reg.has("t.lookups"));
    EXPECT_TRUE(reg.has("t.misses"));
    EXPECT_TRUE(reg.has("t.overwrites"));
    EXPECT_TRUE(reg.has("t.lookaside.hit_rate"));
    EXPECT_TRUE(reg.has("t.flush_epoch"));
}

// --- flat table vs oracle --------------------------------------------

TEST(FlatTableTorture, MatchesUnorderedMapOracle)
{
    // Random interleaving of insert / lookup / eraseKind / clear /
    // reserve against a trivially-correct oracle. PCs are
    // collision-heavy on purpose: identical low bits (the part a
    // naive mask-indexed table would key on) with entropy only in
    // the high bits, plus a small pool so overwrites are frequent.
    dbt::TranslationMap map(
        dbt::TranslationMap::Config{true, 16, 32});
    std::unordered_map<Addr, std::array<bool, 2>> oracle;

    std::mt19937_64 rng(20260807);
    auto randPc = [&rng]() -> Addr {
        return 0x00400000u + (static_cast<Addr>(rng() % 509) << 20);
    };

    auto checkLookup = [&](Addr pc) {
        const auto it = oracle.find(pc);
        const bool bb = it != oracle.end() && it->second[0];
        const bool sb = it != oracle.end() && it->second[1];
        dbt::Translation *got = map.lookup(pc);
        if (!bb && !sb) {
            ASSERT_EQ(got, nullptr) << "pc 0x" << std::hex << pc;
            return;
        }
        ASSERT_NE(got, nullptr) << "pc 0x" << std::hex << pc;
        ASSERT_EQ(got->entryPc, pc);
        // SBT-preferred resolution.
        ASSERT_EQ(got->kind, sb ? dbt::TransKind::Superblock
                                : dbt::TransKind::BasicBlock);
        ASSERT_EQ(map.lookup(pc, dbt::TransKind::BasicBlock) != nullptr,
                  bb);
        ASSERT_EQ(map.lookup(pc, dbt::TransKind::Superblock) != nullptr,
                  sb);
    };

    for (int op = 0; op < 60000; ++op) {
        const u64 roll = rng() % 1000;
        if (roll < 450) { // insert
            const Addr pc = randPc();
            const dbt::TransKind kind = (rng() & 1)
                                            ? dbt::TransKind::Superblock
                                            : dbt::TransKind::BasicBlock;
            dbt::Translation *t = map.insert(makeTrans(pc, kind));
            ASSERT_NE(t, nullptr);
            ASSERT_EQ(t->entryPc, pc);
            oracle[pc][kind == dbt::TransKind::Superblock ? 1 : 0] =
                true;
        } else if (roll < 980) { // lookup
            checkLookup(randPc());
        } else if (roll < 994) { // eraseKind
            const unsigned k = rng() & 1;
            map.eraseKind(k ? dbt::TransKind::Superblock
                            : dbt::TransKind::BasicBlock);
            for (auto it = oracle.begin(); it != oracle.end();) {
                it->second[k] = false;
                if (!it->second[0] && !it->second[1])
                    it = oracle.erase(it);
                else
                    ++it;
            }
        } else if (roll < 998) { // clear
            map.clear();
            oracle.clear();
        } else { // reserve mid-stream must not lose entries
            map.reserve(1024);
        }

        if (op % 997 == 0) {
            std::size_t bb = 0, sb = 0;
            for (const auto &[pc, kinds] : oracle) {
                bb += kinds[0];
                sb += kinds[1];
            }
            ASSERT_EQ(map.numBasicBlocks(), bb) << "op " << op;
            ASSERT_EQ(map.numSuperblocks(), sb) << "op " << op;
        }
    }

    // Full final sweep over every pc the stream ever touched.
    for (Addr base = 0; base < 509; ++base)
        checkLookup(0x00400000u + (base << 20));
    // forEach visits exactly the live set.
    std::size_t visited = 0;
    map.forEach([&](const dbt::Translation &t) {
        ++visited;
        const auto it = oracle.find(t.entryPc);
        ASSERT_NE(it, oracle.end());
        ASSERT_TRUE(
            it->second[t.kind == dbt::TransKind::Superblock ? 1 : 0]);
    });
    EXPECT_EQ(visited, map.size());
}

// --- fast vs legacy dispatch differential ----------------------------

TEST(FastVsLegacy, IdenticalOutcomeAndRetireCounts)
{
    // The fast path is a pure host-side optimization: architected
    // state, retire counts, and staging decisions must be
    // bit-identical to the legacy two-map dispatch. A tiny BBT cache
    // forces flush/retranslate cycles so the epoch invalidation and
    // table rebuild paths are exercised under a real Vmm.
    for (u64 seed : {1u, 7u, 42u}) {
        workload::ProgramParams pp;
        pp.seed = seed;
        pp.numFuncs = 4;
        pp.blocksPerFunc = 4;
        pp.mainIterations = 40;
        workload::Program prog = workload::generateProgram(pp);

        x86::Memory ref_mem;
        test::RunResult ref = test::runInterp(prog, ref_mem);
        ASSERT_EQ(ref.exit, Exit::Halted) << "seed " << seed;

        for (u64 cache_kb : {256u, 2u}) {
            vmm::VmmConfig base;
            base.hotThreshold = 30;
            base.bbtCacheBytes = cache_kb * 1024;

            vmm::VmmConfig fast = base;
            fast.fastDispatch = true;
            vmm::VmmConfig slow = base;
            slow.fastDispatch = false;

            x86::Memory fmem, smem;
            vmm::VmmStats fst, sst;
            test::RunResult fr = test::runVmm(prog, fmem, fast, &fst);
            test::RunResult sr = test::runVmm(prog, smem, slow, &sst);

            EXPECT_TRUE(
                test::sameOutcome(prog, ref, ref_mem, fr, fmem))
                << "fast, seed " << seed << " cache " << cache_kb;
            EXPECT_TRUE(
                test::sameOutcome(prog, ref, ref_mem, sr, smem))
                << "legacy, seed " << seed << " cache " << cache_kb;

            // Staging decisions, not just final state.
            EXPECT_EQ(fst.totalRetired(), sst.totalRetired());
            EXPECT_EQ(fst.bbtTranslations, sst.bbtTranslations);
            EXPECT_EQ(fst.sbtTranslations, sst.sbtTranslations);
            EXPECT_EQ(fst.bbtCacheFlushes, sst.bbtCacheFlushes);
            EXPECT_EQ(fst.dispatches, sst.dispatches);
            EXPECT_EQ(fst.chainFollows, sst.chainFollows);
        }
    }
}

TEST(FastVsLegacy, FlushesBumpEpochUnderVmm)
{
    workload::ProgramParams pp;
    pp.seed = 3;
    pp.numFuncs = 5;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 50;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory mem;
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::VmmConfig cfg;
    cfg.hotThreshold = 30;
    cfg.bbtCacheBytes = 2 * 1024; // force flushes
    vmm::Vmm vm(mem, cfg);
    ASSERT_EQ(vm.run(cpu, 10'000'000), Exit::Halted);
    ASSERT_GT(vm.stats().bbtCacheFlushes, 0u);
    // Every code-cache flush must have advanced the lookaside epoch.
    EXPECT_GT(vm.translations().flushEpoch(),
              vm.stats().bbtCacheFlushes);
}

} // namespace
} // namespace cdvm
