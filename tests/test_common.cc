/** @file Foundation tests: bitfields, RNG distributions, stats, tables. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace cdvm
{
namespace
{

TEST(Bitfield, BitsAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0x1, 0), 1u);
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
    // Round trip.
    for (unsigned lo = 0; lo < 24; lo += 3) {
        u64 v = insertBits(0x123456789abcdef0ULL, lo + 7, lo, 0xa5);
        EXPECT_EQ(bits(v, lo + 7, lo), 0xa5u);
    }
}

TEST(Bitfield, SignExtension)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0xffffffff, 32), -1);
    EXPECT_EQ(sext(0x1ff, 8), -1); // upper garbage ignored
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
}

TEST(Bitfield, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(Random, Deterministic)
{
    Pcg32 a(42, 1), b(42, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Pcg32 c(43, 1);
    bool differs = false;
    Pcg32 a2(42, 1);
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Random, UniformBounds)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10000; ++i) {
        u32 v = rng.below(17);
        EXPECT_LT(v, 17u);
        double d = rng.uniform();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        i64 r = rng.range(-5, 5);
        EXPECT_GE(r, -5);
        EXPECT_LE(r, 5);
    }
}

TEST(Random, LogNormalMoments)
{
    Pcg32 rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.logNormal(0.0, 1.0);
    double mean = sum / n;
    // E[lognormal(0,1)] = e^0.5 ~ 1.6487.
    EXPECT_NEAR(mean, 1.6487, 0.05);
}

TEST(Random, GeometricMean)
{
    Pcg32 rng(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    // mean of failures-before-success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Random, DiscreteSamplerProportions)
{
    std::vector<double> w{1.0, 2.0, 7.0};
    DiscreteSampler s(w);
    Pcg32 rng(3);
    std::array<int, 3> count{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++count[s.sample(rng)];
    EXPECT_NEAR(count[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(count[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(count[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Random, ZipfHeadHeavy)
{
    ZipfSampler z(1000, 1.0);
    Pcg32 rng(5);
    u64 head = 0, total = 100000;
    for (u64 i = 0; i < total; ++i) {
        if (z.sample(rng) <= 10)
            ++head;
    }
    // For zipf(1.0) over 1000 ranks, top-10 mass ~ H(10)/H(1000) ~ 39%.
    EXPECT_NEAR(static_cast<double>(head) / total, 0.39, 0.04);
}

TEST(Stats, LogHistogramBuckets)
{
    LogHistogram h(10.0, 8);
    EXPECT_EQ(h.bucketOf(0), 0u);
    EXPECT_EQ(h.bucketOf(9), 0u);
    EXPECT_EQ(h.bucketOf(10), 1u);
    EXPECT_EQ(h.bucketOf(99), 1u);
    EXPECT_EQ(h.bucketOf(100), 2u);
    EXPECT_EQ(h.bucketOf(1'000'000), 6u);
    h.add(5);
    h.add(50, 2.0);
    h.add(500);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAtOrAbove(100), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAtOrAbove(10), 3.0);
}

TEST(Stats, StatGroup)
{
    StatGroup g;
    g.add("a", 1.0, "first");
    g.add("a", 2.0);
    g.set("b", 10.0, "second");
    EXPECT_DOUBLE_EQ(g.get("a"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("b"), 10.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("missing"));
    std::string dump = g.dump("pfx.");
    EXPECT_NE(dump.find("pfx.a 3"), std::string::npos);
    EXPECT_NE(dump.find("# second"), std::string::npos);
}

TEST(Stats, RunningStat)
{
    RunningStat r;
    r.add(3.0);
    r.add(1.0);
    r.add(5.0);
    EXPECT_EQ(r.count(), 3u);
    EXPECT_DOUBLE_EQ(r.mean(), 3.0);
    EXPECT_DOUBLE_EQ(r.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.max(), 5.0);
}

TEST(Table, RenderAndFormat)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string s = t.render();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);

    EXPECT_EQ(fmtCount(1234567ULL), "1,234,567");
    EXPECT_EQ(fmtCount(12ULL), "12");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");

    Series a{"x", {1, 2}, {3, 4}};
    std::string r = renderSeries({a}, "t", "v");
    EXPECT_NE(r.find("series x:"), std::string::npos);
    EXPECT_NE(r.find("  2 4"), std::string::npos);
}

} // namespace
} // namespace cdvm
