/**
 * @file
 * Macro-op fusion tests: pairing rules, legality of tail hoisting,
 * flag-dependence (compare-and-branch) fusion, and the semantic
 * property that fusion never changes execution results.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "uops/crack.hh"
#include "uops/exec.hh"
#include "uops/fusion.hh"
#include "workload/program_gen.hh"
#include "x86/decoder.hh"

namespace cdvm::uops
{
namespace
{

Uop
alu(UOp op, u8 d, u8 s1, u8 s2, bool wf = true)
{
    Uop u;
    u.op = op;
    u.dst = d;
    u.src1 = s1;
    u.src2 = s2;
    u.writeFlags = wf;
    return u;
}

TEST(Fusion, AdjacentRegisterDependence)
{
    UopVec v;
    v.push_back(alu(UOp::Add, 0, 1, 2));
    v.push_back(alu(UOp::Sub, 3, 0, 4)); // consumes r0
    FusionStats st = fusePairs(v);
    EXPECT_EQ(st.pairs, 1u);
    EXPECT_TRUE(v[0].fusedHead);
    EXPECT_FALSE(v[1].fusedHead);
}

TEST(Fusion, CompareAndBranch)
{
    UopVec v;
    Uop cmp;
    cmp.op = UOp::Cmp;
    cmp.src1 = 0;
    cmp.src2 = 1;
    v.push_back(cmp);
    Uop br;
    br.op = UOp::Br;
    br.cond = 4;
    br.target = 0x1000;
    v.push_back(br);
    FusionStats st = fusePairs(v);
    EXPECT_EQ(st.pairs, 1u);
    EXPECT_TRUE(v[0].fusedHead);
}

TEST(Fusion, IndependentOpsDoNotFuse)
{
    UopVec v;
    v.push_back(alu(UOp::Add, 0, 1, 2));
    v.push_back(alu(UOp::Sub, 3, 4, 5));
    FusionStats st = fusePairs(v);
    EXPECT_EQ(st.pairs, 0u);
}

TEST(Fusion, TailHoistedOverIndependentOp)
{
    UopVec v;
    v.push_back(alu(UOp::Add, 0, 1, 2)); // head
    v.push_back(alu(UOp::Xor, 5, 6, 7)); // independent filler
    v.push_back(alu(UOp::Sub, 3, 0, 4)); // consumer of r0
    // The consumer's flag write would clobber flags the filler also
    // writes... actually both write flags: check WAW-on-flags rule.
    FusionStats st = fusePairs(v);
    // flags WAW between tail and filler forbids the hoist.
    EXPECT_EQ(st.pairs, 0u);

    // Without flag writes the hoist is legal.
    UopVec w;
    w.push_back(alu(UOp::Add, 0, 1, 2, false));
    w.push_back(alu(UOp::Xor, 5, 6, 7, false));
    w.push_back(alu(UOp::Sub, 3, 0, 4, false));
    st = fusePairs(w);
    EXPECT_EQ(st.pairs, 1u);
    EXPECT_TRUE(w[0].fusedHead);
    EXPECT_EQ(w[1].op, UOp::Sub); // hoisted next to the head
    EXPECT_EQ(w[2].op, UOp::Xor);
}

TEST(Fusion, HoistBlockedByHazards)
{
    // RAW: the tail reads a value produced in between, so it cannot
    // be hoisted next to the first head. (The middle op and the tail
    // form their own legitimate adjacent pair instead.)
    UopVec v;
    v.push_back(alu(UOp::Add, 0, 1, 2, false));
    v.push_back(alu(UOp::Mov, 4, 9, UREG_NONE, false));
    v.push_back(alu(UOp::Sub, 3, 0, 4, false)); // reads r4 from mid
    EXPECT_EQ(fusePairs(v).pairs, 1u);
    EXPECT_FALSE(v[0].fusedHead); // the Add must not have hoisted Sub
    EXPECT_TRUE(v[1].fusedHead);  // Mov :: Sub is the legal pair

    // WAR: the tail writes a register the middle op still reads.
    UopVec w;
    w.push_back(alu(UOp::Add, 0, 1, 2, false));
    w.push_back(alu(UOp::Mov, 5, 3, UREG_NONE, false)); // reads r3
    w.push_back(alu(UOp::Sub, 3, 0, 4, false));         // writes r3
    EXPECT_EQ(fusePairs(w).pairs, 0u);

    // Barrier: never hoist across a store.
    UopVec s;
    s.push_back(alu(UOp::Add, 0, 1, 2, false));
    Uop st;
    st.op = UOp::St;
    st.dst = 6;
    st.src1 = 7;
    st.hasImm = true;
    s.push_back(st);
    s.push_back(alu(UOp::Sub, 3, 0, 4, false));
    EXPECT_EQ(fusePairs(s).pairs, 0u);
}

TEST(Fusion, BranchTailOnlyWhenAdjacent)
{
    UopVec v;
    Uop cmp;
    cmp.op = UOp::Cmp;
    cmp.src1 = 0;
    cmp.src2 = 1;
    v.push_back(cmp);
    v.push_back(alu(UOp::Mov, 4, 5, UREG_NONE, false));
    Uop br;
    br.op = UOp::Br;
    br.cond = 4;
    v.push_back(br);
    // The branch cannot be hoisted (it would move the exit point).
    FusionStats st = fusePairs(v);
    // cmp may not fuse with the branch; mov doesn't read cmp's output.
    for (const Uop &u : v) {
        if (u.op == UOp::Cmp) {
            EXPECT_FALSE(u.fusedHead);
        }
    }
    (void)st;
}

TEST(Fusion, EachUopInAtMostOnePair)
{
    UopVec v;
    v.push_back(alu(UOp::Add, 0, 1, 2)); // head A
    v.push_back(alu(UOp::Sub, 3, 0, 4)); // tail of A, also produces r3
    v.push_back(alu(UOp::Xor, 5, 3, 6)); // would-be tail of the tail
    FusionStats st = fusePairs(v);
    EXPECT_EQ(st.pairs, 1u);
    EXPECT_TRUE(v[0].fusedHead);
    EXPECT_FALSE(v[1].fusedHead); // already a tail, cannot head a pair
}

TEST(Fusion, MemOpsNeverHeads)
{
    UopVec v;
    Uop ld;
    ld.op = UOp::Ld;
    ld.dst = 0;
    ld.src1 = 3;
    ld.hasImm = true;
    v.push_back(ld);
    v.push_back(alu(UOp::Add, 2, 0, 1));
    FusionStats st = fusePairs(v);
    EXPECT_EQ(st.pairs, 0u); // loads are multi-cycle: not head-eligible
}

TEST(Fusion, SemanticsPreservedOnRealPrograms)
{
    // Property: executing the fused (reordered) body produces the same
    // state as the original crack output, block by block.
    for (u64 seed = 50; seed < 56; ++seed) {
        workload::ProgramParams pp;
        pp.seed = seed;
        workload::Program prog = workload::generateProgram(pp);
        x86::Memory mem0;
        prog.loadInto(mem0);

        Pcg32 rng(seed);
        std::size_t pos = 0;
        unsigned blocks = 0;
        std::vector<x86::Insn> block;
        while (pos + x86::MAX_INSN_LEN < prog.image.size() &&
               blocks < 40) {
            x86::DecodeResult dr = x86::decode(
                std::span<const u8>(prog.image.data() + pos,
                                    x86::MAX_INSN_LEN + 1),
                prog.codeBase + pos);
            if (!dr.ok) {
                ++pos;
                block.clear();
                continue;
            }
            pos += dr.insn.length;
            if (dr.insn.isCti()) {
                block.clear();
                continue; // straight-line bodies only
            }
            block.push_back(dr.insn);
            if (block.size() < 6)
                continue;

            CrackResult cr = crackAll(block);
            UopVec fused = cr.uops;
            FusionStats st = fusePairs(fused);
            ++blocks;
            block.clear();
            if (st.pairs == 0)
                continue;

            // Execute both versions from a random state.
            UState s0;
            for (unsigned r = 0; r < 8; ++r)
                s0.regs[r] = rng.next();
            s0.regs[3] = 0x00800000;          // EBX data base
            s0.regs[4] = 0x7ffe0000;          // ESP
            s0.regs[6] &= 1023;               // masked indices
            s0.regs[7] &= 1023;
            s0.eflags = 0x202 | (rng.next() & x86::FLAG_ALL);

            x86::Memory mem_a = mem0;
            UState sa = s0;
            UopExecutor ea(sa, mem_a);
            BlockResult ra = ea.run(cr.uops, 0);

            x86::Memory mem_b = mem0;
            UState sb = s0;
            UopExecutor eb(sb, mem_b);
            BlockResult rb = eb.run(fused, 0);

            ASSERT_EQ(static_cast<int>(ra.exit),
                      static_cast<int>(rb.exit));
            if (ra.exit == BlockExit::Fault)
                continue; // both fault: precise recovery handles it
            for (unsigned r = 0; r < 8; ++r)
                EXPECT_EQ(sa.regs[r], sb.regs[r])
                    << "seed " << seed << " reg " << r;
            EXPECT_EQ(sa.eflags & x86::FLAG_ALL,
                      sb.eflags & x86::FLAG_ALL)
                << "seed " << seed;
        }
        EXPECT_GT(blocks, 5u);
    }
}

} // namespace
} // namespace cdvm::uops
