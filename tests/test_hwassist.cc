/**
 * @file
 * Hardware-assist tests: the XLTx86 functional unit (vs the software
 * cracker, property-style), the CSR format, the HAloop functional
 * behaviour and cost, the BBB hotspot detector, and the dual-mode
 * decoder model.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hwassist/bbb.hh"
#include "x86/asm.hh"
#include "hwassist/dualmode.hh"
#include "hwassist/haloop.hh"
#include "hwassist/xlt.hh"
#include "uops/crack.hh"
#include "uops/csr.hh"
#include "uops/encoding.hh"
#include "workload/program_gen.hh"
#include "x86/decoder.hh"

namespace cdvm
{
namespace
{

TEST(Csr, FieldRoundTrip)
{
    u32 c = uops::csr::make(11, 14, false, false);
    EXPECT_EQ(uops::csr::ilen(c), 11u);
    EXPECT_EQ(uops::csr::uopBytes(c), 14u);
    EXPECT_FALSE(uops::csr::isComplex(c));
    EXPECT_FALSE(uops::csr::isCti(c));

    c = uops::csr::make(1, 0, true, false);
    EXPECT_TRUE(uops::csr::isComplex(c));
    c = uops::csr::make(5, 0, false, true);
    EXPECT_TRUE(uops::csr::isCti(c));
}

TEST(Xlt, MatchesSoftwareCracker)
{
    // Property: for every decodable non-CTI, non-complex instruction in
    // a generated program, XLTx86 emits exactly the encoded bytes the
    // software cracker would.
    workload::ProgramParams pp;
    pp.seed = 31;
    workload::Program prog = workload::generateProgram(pp);
    hwassist::XltUnit xlt;
    unsigned checked = 0;

    std::size_t pos = 0;
    while (pos + 16 < prog.image.size()) {
        u8 src[16];
        std::memcpy(src, prog.image.data() + pos, 16);
        u8 dst[16];
        u32 csr = xlt.translate(src, dst);

        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(src, 16), /*pc=*/0);
        if (!dr.ok) {
            EXPECT_TRUE(uops::csr::isComplex(csr));
            ++pos;
            continue;
        }
        EXPECT_EQ(uops::csr::ilen(csr), dr.insn.length);
        if (dr.insn.isCti()) {
            EXPECT_TRUE(uops::csr::isCti(csr));
        } else if (!uops::csr::isComplex(csr)) {
            uops::CrackResult cr = uops::crack(dr.insn);
            std::vector<u8> sw = uops::encode(cr.uops);
            ASSERT_LE(sw.size(), 16u);
            EXPECT_EQ(uops::csr::uopBytes(csr), sw.size());
            if (!sw.empty()) {
                EXPECT_EQ(std::memcmp(dst, sw.data(), sw.size()), 0);
            }
            ++checked;
        }
        pos += dr.insn.length;
    }
    EXPECT_GT(checked, 100u);
    EXPECT_GT(xlt.invocations(), checked);
}

TEST(Xlt, FlagsComplexCases)
{
    hwassist::XltUnit xlt;
    u8 dst[16];
    const u8 div[16] = {0xf7, 0xf1}; // div ecx
    EXPECT_TRUE(uops::csr::isComplex(xlt.translate(div, dst)));
    const u8 cpuid[16] = {0x0f, 0xa2};
    EXPECT_TRUE(uops::csr::isComplex(xlt.translate(cpuid, dst)));
    const u8 bad[16] = {0x0f, 0x0b}; // UD2
    EXPECT_TRUE(uops::csr::isComplex(xlt.translate(bad, dst)));
    const u8 jmp[16] = {0xeb, 0x02};
    u32 c = xlt.translate(jmp, dst);
    EXPECT_TRUE(uops::csr::isCti(c));
    EXPECT_FALSE(uops::csr::isComplex(c));
    EXPECT_EQ(xlt.complexCases(), 3u);
    EXPECT_EQ(xlt.ctiCases(), 1u);
}

TEST(HaLoop, TranslatesStraightLineCode)
{
    x86::Memory mem;
    x86::Assembler as(0x2000);
    as.movRI(x86::EAX, 3);
    as.aluRI(x86::Op::Add, x86::EAX, 4);
    as.movRR(x86::EDX, x86::EAX);
    as.ret();
    mem.writeBlock(0x2000, as.finalize());

    hwassist::XltUnit xlt;
    hwassist::HaLoop loop(mem, xlt);
    auto r = loop.run(0x2000, 0xe0000000, 64);

    EXPECT_EQ(r.insnsTranslated, 3u);
    EXPECT_TRUE(r.stoppedCti); // the RET
    EXPECT_FALSE(r.stoppedComplex);
    EXPECT_GT(r.bytesEmitted, 0u);

    // The emitted code-cache bytes decode back to the same micro-ops
    // the software BBT would produce for the straight-line body.
    std::vector<u8> cc = mem.readBlock(0xe0000000, r.bytesEmitted);
    uops::UopVec decoded;
    ASSERT_TRUE(uops::decodeAll(
        std::span<const u8>(cc.data(), cc.size()), decoded));
    EXPECT_GE(decoded.size(), 3u);
}

TEST(HaLoop, CostNearPaperTwentyCycles)
{
    workload::ProgramParams pp;
    pp.seed = 17;
    workload::Program prog = workload::generateProgram(pp);
    x86::Memory mem;
    prog.loadInto(mem);
    hwassist::XltUnit xlt;
    hwassist::HaLoop loop(mem, xlt);
    Addr pc = prog.codeBase;
    Addr cc = 0xe0000000;
    while (pc < prog.codeBase + prog.image.size()) {
        auto r = loop.run(pc, cc, 64);
        cc += r.bytesEmitted;
        u8 win[x86::MAX_INSN_LEN + 1];
        mem.fetchWindow(r.stoppedAt, win, sizeof(win));
        unsigned len = x86::insnLength(
            std::span<const u8>(win, sizeof(win)), r.stoppedAt);
        pc = r.stoppedAt + (len ? len : 1);
    }
    // Paper: ~20 cycles per x86 instruction for the assisted BBT.
    EXPECT_GT(loop.measuredCyclesPerInsn(), 10.0);
    EXPECT_LT(loop.measuredCyclesPerInsn(), 25.0);
}

TEST(HaLoop, StopsAtComplex)
{
    x86::Memory mem;
    x86::Assembler as(0x2000);
    as.movRI(x86::ECX, 3);
    as.divA(x86::ECX); // complex
    as.ret();
    mem.writeBlock(0x2000, as.finalize());
    hwassist::XltUnit xlt;
    hwassist::HaLoop loop(mem, xlt);
    auto r = loop.run(0x2000, 0xe0000000, 64);
    EXPECT_EQ(r.insnsTranslated, 1u);
    EXPECT_TRUE(r.stoppedComplex);
    EXPECT_EQ(r.stoppedAt, 0x2005u); // after the mov
}

TEST(Bbb, DetectsHotTargetsOnce)
{
    hwassist::BbbParams p;
    p.hotThreshold = 100;
    hwassist::BranchBehaviorBuffer bbb(p);
    for (int i = 0; i < 99; ++i)
        EXPECT_FALSE(bbb.recordBranch(0x4000));
    EXPECT_TRUE(bbb.recordBranch(0x4000));
    EXPECT_FALSE(bbb.recordBranch(0x4000)); // reported only once
    EXPECT_EQ(bbb.detections(), 1u);
}

TEST(Bbb, BulkCounting)
{
    hwassist::BbbParams p;
    p.hotThreshold = 1000;
    hwassist::BranchBehaviorBuffer bbb(p);
    EXPECT_FALSE(bbb.recordBranch(0x4000, 999));
    EXPECT_TRUE(bbb.recordBranch(0x4000, 1));
}

TEST(Bbb, ConflictsEvict)
{
    hwassist::BbbParams p;
    p.entries = 16; // tiny: force conflicts
    p.hotThreshold = 10;
    hwassist::BranchBehaviorBuffer bbb(p);
    Pcg32 rng(1);
    for (int i = 0; i < 10000; ++i)
        bbb.recordBranch(rng.next() & 0xffff);
    EXPECT_GT(bbb.tagConflicts(), 0u);
    bbb.reset();
    EXPECT_FALSE(bbb.recordBranch(0x4000, 9));
}

TEST(DualMode, DecodeMatchesCracker)
{
    x86::Memory mem;
    x86::Assembler as(0x3000);
    as.aluRR(x86::Op::Add, x86::EAX, x86::EDX);
    mem.writeBlock(0x3000, as.finalize());

    hwassist::DualModeDecoder dm(mem);
    hwassist::DualModeDecoder::Decoded out;
    ASSERT_TRUE(dm.decodeAt(0x3000, out));
    EXPECT_EQ(out.insn.op, x86::Op::Add);
    ASSERT_EQ(out.uops.size(), 1u);
    EXPECT_EQ(out.uops[0].op, uops::UOp::Add);
    EXPECT_EQ(dm.insnsDecoded(), 1u);
}

TEST(DualMode, ModeSwitchingAndActivity)
{
    x86::Memory mem;
    hwassist::DualModeDecoder dm(mem);
    EXPECT_EQ(dm.mode(), hwassist::DecodeMode::X86);
    dm.tick(100);
    dm.setMode(hwassist::DecodeMode::Native);
    dm.tick(50);
    dm.setMode(hwassist::DecodeMode::Native); // no-op
    dm.setMode(hwassist::DecodeMode::X86);
    dm.tick(25);
    EXPECT_EQ(dm.x86ModeCycles(), 125u);
    EXPECT_EQ(dm.nativeModeCycles(), 50u);
    EXPECT_EQ(dm.modeSwitches(), 2u);
}

} // namespace
} // namespace cdvm
