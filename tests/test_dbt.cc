/**
 * @file
 * DBT unit tests: code cache arenas, translation lookup & chaining,
 * BBT block formation, superblock formation, SBT linearization, and
 * the optimization passes.
 */

#include <gtest/gtest.h>

#include "dbt/bbt.hh"
#include "dbt/codecache.hh"
#include "dbt/lookup.hh"
#include "dbt/optimize.hh"
#include "dbt/sbt.hh"
#include "uops/exec.hh"
#include "x86/asm.hh"

namespace cdvm
{
namespace
{

using namespace cdvm::x86;

TEST(CodeCache, BumpAllocationAndFlush)
{
    dbt::CodeCache cc("t", 0x1000, 256);
    Addr a = cc.allocate(100);
    EXPECT_EQ(a, 0x1000u);
    Addr b = cc.allocate(60);
    EXPECT_EQ(b, 0x1064u); // 100 is already 4-byte aligned
    EXPECT_EQ(cc.used(), 100u + 60u);
    EXPECT_EQ(cc.allocate(200), 0u); // full
    cc.flush();
    EXPECT_EQ(cc.flushes(), 1u);
    EXPECT_EQ(cc.used(), 0u);
    EXPECT_EQ(cc.allocate(200), 0x1000u);
}

TEST(TranslationMap, PrefersSuperblocks)
{
    dbt::TranslationMap map;
    auto bb = std::make_unique<dbt::Translation>();
    bb->kind = dbt::TransKind::BasicBlock;
    bb->entryPc = 0x100;
    map.insert(std::move(bb));
    EXPECT_EQ(map.lookup(0x100)->kind, dbt::TransKind::BasicBlock);

    auto sb = std::make_unique<dbt::Translation>();
    sb->kind = dbt::TransKind::Superblock;
    sb->entryPc = 0x100;
    map.insert(std::move(sb));
    EXPECT_EQ(map.lookup(0x100)->kind, dbt::TransKind::Superblock);
    EXPECT_EQ(map.numBasicBlocks(), 1u);
    EXPECT_EQ(map.numSuperblocks(), 1u);

    // Kind-filtered lookup.
    EXPECT_EQ(map.lookup(0x100, dbt::TransKind::BasicBlock)->kind,
              dbt::TransKind::BasicBlock);
    EXPECT_EQ(map.lookup(0x200), nullptr);
    EXPECT_GT(map.lookupMisses(), 0u);
}

TEST(TranslationMap, EraseKindUnchains)
{
    dbt::TranslationMap map;
    auto a = std::make_unique<dbt::Translation>();
    a->kind = dbt::TransKind::Superblock;
    a->entryPc = 0x100;
    auto b = std::make_unique<dbt::Translation>();
    b->kind = dbt::TransKind::BasicBlock;
    b->entryPc = 0x200;
    dbt::Translation *pa = map.insert(std::move(a));
    dbt::Translation *pb = map.insert(std::move(b));
    const dbt::TransId idb = pb->id;
    EXPECT_TRUE(pa->addChain(0x200, pb->id));
    EXPECT_EQ(map.resolve(pa->chainedTo(0x200)), pb);

    map.eraseKind(dbt::TransKind::BasicBlock);
    // The superblock survives but its chain into the erased arena is
    // gone (conservative unchain-all) — and even a handle squirreled
    // away before the flush resolves to null, not a dangling pointer.
    EXPECT_EQ(map.lookup(0x100), pa);
    EXPECT_FALSE(pa->chainedTo(0x200));
    EXPECT_EQ(map.resolve(idb), nullptr);
}

TEST(Translation, ChainSlots)
{
    const dbt::TransId x{1, 1}, y{2, 1}, z{3, 1};
    dbt::Translation t;
    EXPECT_TRUE(t.addChain(1, x));
    EXPECT_TRUE(t.addChain(2, y));
    EXPECT_FALSE(t.addChain(3, z)); // only two exits
    EXPECT_TRUE(t.addChain(2, z));  // retarget an existing slot
    EXPECT_EQ(t.chainedTo(2), z);
    EXPECT_EQ(t.chainedTo(1), x);
    EXPECT_FALSE(t.chainedTo(9));
}

TEST(Translation, HandleGenerations)
{
    // A handle from a previous life of an arena slot must not resolve
    // after the slot is reused.
    dbt::TranslationMap map;
    auto a = std::make_unique<dbt::Translation>();
    a->entryPc = 0x100;
    const dbt::TransId ida = map.insert(std::move(a))->id;
    EXPECT_TRUE(static_cast<bool>(ida));
    EXPECT_NE(map.resolve(ida), nullptr);

    map.eraseKind(dbt::TransKind::BasicBlock);
    EXPECT_EQ(map.resolve(ida), nullptr);

    // Reinstall at the same pc: the freed arena slot is reused with a
    // bumped generation, so the old handle still resolves null.
    auto b = std::make_unique<dbt::Translation>();
    b->entryPc = 0x100;
    dbt::Translation *pb = map.insert(std::move(b));
    EXPECT_EQ(pb->id.idx, ida.idx);
    EXPECT_NE(pb->id.gen, ida.gen);
    EXPECT_EQ(map.resolve(ida), nullptr);
    EXPECT_EQ(map.resolve(pb->id), pb);
    EXPECT_EQ(map.resolve(dbt::NO_TRANS), nullptr);
}

TEST(Bbt, BlockEndsAtCti)
{
    Memory mem;
    Assembler as(0x1000);
    as.movRI(EAX, 1);
    as.aluRI(Op::Add, EAX, 2);
    as.ret();
    as.movRI(EDX, 9); // next block, must not be included
    std::vector<u8> img = as.finalize();
    mem.writeBlock(0x1000, img);

    dbt::BasicBlockTranslator bbt(mem);
    auto t = bbt.translate(0x1000);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->numX86Insns, 3u);
    EXPECT_TRUE(t->endsInCti);
    EXPECT_FALSE(t->endsInCondBranch);
    EXPECT_EQ(t->x86pcs.size(), 3u);
    EXPECT_GT(t->codeBytes, 0u);
    EXPECT_EQ(t->uops.back().op, uops::UOp::Jr); // ret cracks to Jr
}

TEST(Bbt, CondBranchMetadata)
{
    Memory mem;
    Assembler as(0x1000);
    auto l = as.newLabel();
    as.aluRI(Op::Cmp, EAX, 0);
    as.jcc(Cond::E, l);
    as.nop();
    as.bind(l);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    dbt::BasicBlockTranslator bbt(mem);
    auto t = bbt.translate(0x1000);
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->endsInCondBranch);
    EXPECT_EQ(t->condBranchTarget, t->fallthroughPc + 1); // over the nop
}

TEST(Bbt, MaxInsnsCut)
{
    Memory mem;
    Assembler as(0x1000);
    for (int i = 0; i < 100; ++i)
        as.nop();
    as.ret();
    mem.writeBlock(0x1000, as.finalize());
    dbt::BasicBlockTranslator bbt(mem, 16);
    auto t = bbt.translate(0x1000);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->numX86Insns, 16u);
    EXPECT_FALSE(t->endsInCti);
    EXPECT_EQ(t->fallthroughPc, 0x1010u);
}

TEST(Bbt, UndecodableEntryReturnsNull)
{
    Memory mem;
    mem.write8(0x1000, 0x0f);
    mem.write8(0x1001, 0x0b); // UD2
    dbt::BasicBlockTranslator bbt(mem);
    EXPECT_EQ(bbt.translate(0x1000), nullptr);
}

TEST(Superblock, FollowsBiasedPath)
{
    Memory mem;
    Assembler as(0x1000);
    auto hot = as.newLabel();
    auto cold = as.newLabel();
    as.aluRI(Op::Cmp, EAX, 5);
    as.jcc(Cond::E, hot); // strongly taken per our fake profile
    as.bind(cold);
    as.movRI(EDX, 0);
    as.hlt();
    as.bind(hot);
    as.movRI(EDX, 1);
    as.ret();
    mem.writeBlock(0x1000, as.finalize());

    dbt::SuperblockFormer former(
        mem, [](Addr) { return std::optional<double>(0.95); });
    auto trace = former.form(0x1000);
    ASSERT_TRUE(trace.has_value());
    // The trace should include cmp, jcc (taken on trace), mov edx,1,
    // ret -- not the cold path.
    ASSERT_GE(trace->insns.size(), 4u);
    EXPECT_TRUE(trace->insns[1].takenOnTrace);
    EXPECT_EQ(trace->insns[2].insn.op, Op::Mov);
    EXPECT_EQ(trace->insns[2].insn.src.imm, 1);
    EXPECT_TRUE(trace->endsInCti);
}

TEST(Superblock, StopsAtUnprofiledBranch)
{
    Memory mem;
    Assembler as(0x1000);
    auto l = as.newLabel();
    as.aluRI(Op::Cmp, EAX, 5);
    as.jcc(Cond::E, l);
    as.nop();
    as.bind(l);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    dbt::SuperblockFormer former(
        mem, [](Addr) { return std::optional<double>(); });
    auto trace = former.form(0x1000);
    ASSERT_TRUE(trace.has_value());
    // Unprofiled: include the branch and stop.
    EXPECT_EQ(trace->insns.size(), 2u);
    EXPECT_FALSE(trace->insns[1].takenOnTrace);
}

TEST(Superblock, LoopClosure)
{
    Memory mem;
    Assembler as(0x1000);
    auto top = as.newLabel();
    as.bind(top);
    as.dec(ECX);
    as.jcc(Cond::NE, top);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    dbt::SuperblockFormer former(
        mem, [](Addr) { return std::optional<double>(0.99); });
    auto trace = former.form(0x1000);
    ASSERT_TRUE(trace.has_value());
    // The trace follows the backedge once and closes on itself.
    EXPECT_EQ(trace->blockEntries.size(), 1u);
    EXPECT_EQ(trace->fallthroughPc, 0x1000u); // continues at entry
}

TEST(Sbt, InvertsTakenBranches)
{
    Memory mem;
    Assembler as(0x1000);
    auto hot = as.newLabel();
    as.aluRI(Op::Cmp, EAX, 5);
    as.jcc(Cond::E, hot);
    as.movRI(EDX, 0); // off-trace
    as.hlt();
    as.bind(hot);
    as.hlt();
    mem.writeBlock(0x1000, as.finalize());

    dbt::SuperblockFormer former(
        mem, [](Addr) { return std::optional<double>(0.95); });
    auto trace = former.form(0x1000);
    ASSERT_TRUE(trace.has_value());

    dbt::SuperblockTranslator sbt;
    auto t = sbt.translate(*trace);
    // Find the branch micro-op: it must be inverted (JNE) and target
    // the off-trace fall-through.
    const uops::Uop *br = nullptr;
    for (const uops::Uop &u : t->uops) {
        if (u.op == uops::UOp::Br)
            br = &u;
    }
    ASSERT_NE(br, nullptr);
    EXPECT_EQ(static_cast<x86::Cond>(br->cond), Cond::NE);
    // Off-trace target is the instruction after the jcc.
    EXPECT_EQ(br->target, trace->insns[1].insn.nextPc());
}

TEST(Sbt, ElidesFollowedJumpsAndCallJumps)
{
    Memory mem;
    Assembler as(0x1000);
    auto fn = as.newLabel();
    auto after = as.newLabel();
    as.call(fn);
    as.bind(after);
    as.hlt();
    as.bind(fn);
    as.movRI(EAX, 7);
    as.ret();
    mem.writeBlock(0x1000, as.finalize());

    dbt::SuperblockFormer former(
        mem, [](Addr) { return std::optional<double>(0.95); });
    auto trace = former.form(0x1000);
    ASSERT_TRUE(trace.has_value());

    dbt::SuperblockTranslator sbt;
    auto t = sbt.translate(*trace);
    // Followed call: return-address push kept, but no Jmp micro-op to
    // the callee (the body follows inline).
    unsigned jmps = 0, stores = 0;
    for (const uops::Uop &u : t->uops) {
        jmps += u.op == uops::UOp::Jmp;
        stores += u.isStore();
    }
    EXPECT_EQ(jmps, 0u);
    EXPECT_GE(stores, 1u); // the pushed return address
}

TEST(Optimize, DeadFlagElimination)
{
    using uops::UOp;
    using uops::Uop;
    uops::UopVec v;
    auto alu = [](UOp op, u8 d, bool wf) {
        Uop u;
        u.op = op;
        u.dst = d;
        u.src1 = d;
        u.src2 = d;
        u.writeFlags = wf;
        return u;
    };
    // add (flags dead: overwritten by the next add before any read)
    v.push_back(alu(UOp::Add, 0, true));
    v.push_back(alu(UOp::Add, 1, true));
    // cmp feeding a branch: must survive
    Uop cmp;
    cmp.op = UOp::Cmp;
    cmp.src1 = 0;
    cmp.src2 = 1;
    v.push_back(cmp);
    Uop br;
    br.op = UOp::Br;
    br.cond = 4; // E
    v.push_back(br);

    unsigned removed = 0;
    unsigned killed = dbt::killDeadFlags(v, &removed);
    // Both adds' flag results are overwritten by the cmp before the
    // branch can observe them.
    EXPECT_EQ(killed, 2u);
    EXPECT_EQ(removed, 0u); // cmp survives (the branch reads it)
    EXPECT_FALSE(v[0].writeFlags);
    EXPECT_FALSE(v[1].writeFlags);
}

TEST(Optimize, RemovesDeadPureFlagProducers)
{
    using uops::UOp;
    using uops::Uop;
    uops::UopVec v;
    Uop cmp;
    cmp.op = UOp::Cmp;
    cmp.src1 = 0;
    cmp.src2 = 1;
    v.push_back(cmp); // dead: immediately overwritten
    Uop tst;
    tst.op = UOp::Tst;
    tst.src1 = 2;
    tst.src2 = 3;
    v.push_back(tst); // live at sequence end (conservative)
    unsigned removed = 0;
    dbt::killDeadFlags(v, &removed);
    EXPECT_EQ(removed, 1u);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].op, UOp::Tst);
}

} // namespace
} // namespace cdvm
