/**
 * @file
 * Continuous-profiling layer tests: the flight-recorder ring
 * (wraparound, overwrite ordering, text dump), the sampling
 * profiler's countdown arithmetic and attribution, agreement between
 * the sampled heatmap and exhaustive per-page accounting, sampler
 * determinism across the deterministic async pipeline, interval
 * snapshots, flush-storm and abnormal-exit auto-dumps, and the async
 * SBT latency histograms.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flight_recorder.hh"
#include "common/statreg.hh"
#include "engine/events.hh"
#include "engine/profiler.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/memory.hh"

namespace cdvm
{
namespace
{

engine::StageEvent
spanEvent(TracePhase phase, u64 insns, Addr pc, u64 trans_id = 0)
{
    engine::StageEvent e;
    e.stage = phase;
    e.insns = insns;
    e.x86Addr = pc;
    e.transId = trans_id;
    return e;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

// --- flight recorder ----------------------------------------------------

TEST(FlightRecorder, DisabledRecorderIsANoOp)
{
    FlightRecorder rec(0);
    EXPECT_FALSE(rec.enabled());
    EXPECT_EQ(rec.capacity(), 0u);
    rec.record(TracePhase::Interp, 0, 1, 0x400000);
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    FlightRecorder rec(5);
    EXPECT_EQ(rec.capacity(), 8u);
}

TEST(FlightRecorder, WraparoundKeepsNewestOldestFirst)
{
    FlightRecorder rec(8);
    for (u64 i = 0; i < 20; ++i)
        rec.record(TracePhase::BbtExec, i * 10, 5,
                   0x400000 + i);
    EXPECT_EQ(rec.recorded(), 20u);
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);

    std::vector<FlightEvent> evs = rec.snapshot();
    ASSERT_EQ(evs.size(), 8u);
    // The newest eight events (i = 12..19), oldest first.
    for (u64 i = 0; i < 8; ++i) {
        EXPECT_EQ(evs[i].arg, 0x400000 + 12 + i);
        EXPECT_EQ(evs[i].clock, (12 + i) * 10);
        EXPECT_EQ(evs[i].insns, 5u);
        EXPECT_EQ(evs[i].phase, TracePhase::BbtExec);
    }
}

TEST(FlightRecorder, PartialFillSnapshotsInOrder)
{
    FlightRecorder rec(16);
    rec.record(TracePhase::Interp, 0, 3, 0xa);
    rec.record(TracePhase::BbtTranslate, 3, 7, 0xb);
    rec.record(TracePhase::CacheFlush, 10, 0, 1);
    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.dropped(), 0u);
    std::vector<FlightEvent> evs = rec.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].arg, 0xau);
    EXPECT_EQ(evs[1].phase, TracePhase::BbtTranslate);
    EXPECT_EQ(evs[2].phase, TracePhase::CacheFlush);
}

TEST(FlightRecorder, ClearForgetsButKeepsTheRing)
{
    FlightRecorder rec(8);
    for (int i = 0; i < 12; ++i)
        rec.record(TracePhase::SbtExec, i, 1, i);
    rec.clear();
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.capacity(), 8u);
    rec.record(TracePhase::Interp, 99, 1, 7);
    ASSERT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec.snapshot()[0].clock, 99u);
}

TEST(FlightRecorder, DumpTextCarriesTotalsAndPhases)
{
    FlightRecorder rec(4);
    for (u64 i = 0; i < 6; ++i)
        rec.record(i % 2 ? TracePhase::BbtExec : TracePhase::Interp,
                   i * 100, 10, 0x401000 + i);
    std::string txt = rec.dumpText();
    EXPECT_NE(txt.find("4 of 6"), std::string::npos);
    EXPECT_NE(txt.find("2 overwritten"), std::string::npos);
    EXPECT_NE(txt.find("interp"), std::string::npos);
    EXPECT_NE(txt.find("exec-bbt"), std::string::npos);
    EXPECT_NE(txt.find("0x401005"), std::string::npos);
    // The overwritten events are gone from the dump.
    EXPECT_EQ(txt.find("0x401000"), std::string::npos);
}

// --- sampling profiler: countdown arithmetic ----------------------------

TEST(SamplingProfiler, DisabledProfilerNeverSamples)
{
    engine::SamplingProfiler prof(0);
    EXPECT_FALSE(prof.enabled());
    for (int i = 0; i < 100; ++i)
        prof.onEvent(spanEvent(TracePhase::Interp, 1u << 20, 0x400000));
    EXPECT_EQ(prof.samples(), 0u);
    EXPECT_GT(prof.clock(), 0u);
}

TEST(SamplingProfiler, CountdownSamplesEveryPeriodUnits)
{
    // Period 10; events chop the work stream as 3 + 7 + 25 + 5 = 40
    // units, so samples land at clocks 10, 20, 30 and 40 regardless
    // of the chopping: one in the 7-unit event, two in the 25-unit
    // event, one in the final 5-unit event.
    engine::SamplingProfiler prof(10);
    prof.onEvent(spanEvent(TracePhase::Interp, 3, 0x1000));
    EXPECT_EQ(prof.samples(), 0u);
    prof.onEvent(spanEvent(TracePhase::Interp, 7, 0x2000));
    EXPECT_EQ(prof.samples(), 1u);
    prof.onEvent(spanEvent(TracePhase::BbtExec, 25, 0x3000, 42));
    EXPECT_EQ(prof.samples(), 3u);
    prof.onEvent(spanEvent(TracePhase::SbtExec, 5, 0x4000, 43));
    EXPECT_EQ(prof.samples(), 4u);
    EXPECT_EQ(prof.clock(), 40u);

    EXPECT_EQ(prof.pageSamples(0x2000 >> x86::Memory::PAGE_SHIFT), 1u);
    EXPECT_EQ(prof.pageSamples(0x3000 >> x86::Memory::PAGE_SHIFT), 2u);
    EXPECT_EQ(prof.pageSamples(0x4000 >> x86::Memory::PAGE_SHIFT), 1u);
    EXPECT_EQ(prof.transSamples(42), 2u);
    EXPECT_EQ(prof.transSamples(43), 1u);
    EXPECT_EQ(prof.stageSamples(engine::HotStage::Cold), 1u);
    EXPECT_EQ(prof.stageSamples(engine::HotStage::Bbt), 2u);
    EXPECT_EQ(prof.stageSamples(engine::HotStage::Sbt), 1u);
}

TEST(SamplingProfiler, InstantsAndEmptySpansDoNotAdvanceTheClock)
{
    engine::SamplingProfiler prof(4);
    engine::StageEvent flush;
    flush.stage = TracePhase::CacheFlush;
    flush.instant = true;
    flush.insns = 100; // instants never carry work
    prof.onEvent(flush);
    prof.onEvent(spanEvent(TracePhase::Interp, 0, 0x5000));
    EXPECT_EQ(prof.clock(), 0u);
    EXPECT_EQ(prof.samples(), 0u);
}

TEST(SamplingProfiler, ChoppingInvariance)
{
    // The same 1000 work units, chopped three different ways, produce
    // the same number of samples at the same work-unit positions.
    const u64 period = 17;
    auto feed = [&](const std::vector<u64> &chop) {
        engine::SamplingProfiler p(period);
        for (u64 n : chop)
            p.onEvent(spanEvent(TracePhase::BbtExec, n, 0x400000));
        return p.samples();
    };
    u64 a = feed(std::vector<u64>(1000, 1));
    u64 b = feed({1000});
    u64 c = feed({3, 997});
    u64 d = feed({499, 2, 499});
    EXPECT_EQ(a, 1000 / period);
    EXPECT_EQ(b, a);
    EXPECT_EQ(c, a);
    EXPECT_EQ(d, a);
}

TEST(SamplingProfiler, RankingIsHotFirstWithDeterministicTies)
{
    engine::SamplingProfiler prof(1);
    prof.onEvent(spanEvent(TracePhase::Interp, 3, 0x9000));
    prof.onEvent(spanEvent(TracePhase::Interp, 1, 0x3000));
    prof.onEvent(spanEvent(TracePhase::Interp, 1, 0x1000));
    std::vector<engine::SamplingProfiler::PageRank> r = prof.ranking();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].page, 0x9000u >> x86::Memory::PAGE_SHIFT);
    EXPECT_EQ(r[0].hot.total, 3u);
    // Tie between 0x1000 and 0x3000: ascending page number.
    EXPECT_EQ(r[1].page, 0x1000u >> x86::Memory::PAGE_SHIFT);
    EXPECT_EQ(r[2].page, 0x3000u >> x86::Memory::PAGE_SHIFT);
    EXPECT_EQ(prof.ranking(1).size(), 1u);
}

TEST(SamplingProfiler, JsonAndStatsExportCarryTheHeatmap)
{
    engine::SamplingProfiler prof(2);
    prof.onEvent(spanEvent(TracePhase::SbtExec, 10, 0x400000, 7));
    std::string js = prof.dumpJson();
    EXPECT_NE(js.find("\"period\": 2"), std::string::npos);
    EXPECT_NE(js.find("\"pages\""), std::string::npos);
    EXPECT_NE(js.find("\"translations\""), std::string::npos);
    EXPECT_NE(js.find("\"sbt\""), std::string::npos);

    StatRegistry reg;
    prof.exportStats(reg);
    EXPECT_DOUBLE_EQ(reg.value("engine.profiler.samples"), 5.0);
    EXPECT_DOUBLE_EQ(reg.value("engine.profiler.stage.sbt"), 5.0);
    EXPECT_DOUBLE_EQ(reg.value("engine.profiler.pages"), 1.0);
}

// --- sampled heatmap vs exhaustive accounting ---------------------------

/** Exhaustive ground truth: every covered instruction, by page. */
struct PageWorkSink : engine::StageSink
{
    std::unordered_map<Addr, u64> work;
    u64 total = 0;

    void
    onEvent(const engine::StageEvent &e) override
    {
        if (e.instant || e.insns == 0)
            return;
        work[e.x86Addr >> x86::Memory::PAGE_SHIFT] += e.insns;
        total += e.insns;
    }
};

workload::Program
bigProgram(u64 seed = 20260809)
{
    // Enough code to span several guest pages, so the heatmap has a
    // real distribution to get right. Loop trips are clamped hard:
    // the nested call/loop structure compounds multiplicatively, and
    // wider trips push some seeds past 10^8 retired instructions.
    workload::ProgramParams pp;
    pp.seed = seed;
    pp.numFuncs = 16;
    pp.blocksPerFunc = 8;
    pp.insnsPerBlock = 16;
    pp.mainIterations = 1;
    pp.loopTripMax = 2;
    return workload::generateProgram(pp);
}

TEST(SamplingProfiler, HeatmapAgreesWithExhaustiveAccounting)
{
    workload::Program prog = bigProgram();
    x86::Memory mem;
    prog.loadInto(mem);

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.profileSamplePeriod = 64;
    vmm::Vmm vm(mem, cfg);
    PageWorkSink exact;
    vm.attachSink(&exact);

    x86::CpuState cpu = prog.initialState();
    ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);

    const engine::SamplingProfiler &prof = vm.profiler();
    ASSERT_GT(prof.samples(), 100u);
    ASSERT_GE(exact.work.size(), 2u)
        << "program too small to span pages";
    EXPECT_EQ(prof.clock(), exact.total);

    // The sampled heatmap must pick the same hottest page as the
    // exhaustive per-instruction accounting...
    std::vector<engine::SamplingProfiler::PageRank> rank =
        prof.ranking();
    ASSERT_FALSE(rank.empty());
    Addr exact_top = 0;
    u64 exact_top_work = 0;
    for (const auto &[page, w] : exact.work) {
        if (w > exact_top_work ||
            (w == exact_top_work && page < exact_top)) {
            exact_top = page;
            exact_top_work = w;
        }
    }
    EXPECT_EQ(rank[0].page, exact_top);

    // ...and every page's sampled share must track its exhaustive
    // share (10-point tolerance: sampling error on thousands of
    // samples is far smaller).
    for (const auto &[page, w] : exact.work) {
        double exact_share =
            static_cast<double>(w) / static_cast<double>(exact.total);
        double sampled_share =
            static_cast<double>(prof.pageSamples(page)) /
            static_cast<double>(prof.samples());
        EXPECT_NEAR(sampled_share, exact_share, 0.10)
            << "page 0x" << std::hex
            << (page << x86::Memory::PAGE_SHIFT);
    }
}

TEST(SamplingProfiler, TranslationAttributionMatchesLiveTranslations)
{
    workload::Program prog = bigProgram();
    x86::Memory mem;
    prog.loadInto(mem);

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.profileSamplePeriod = 32;
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();
    ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);

    std::vector<engine::SamplingProfiler::TransRank> tr =
        vm.profiler().transRanking();
    ASSERT_FALSE(tr.empty());
    for (const auto &row : tr) {
        EXPECT_NE(row.transId, 0u);
        EXPECT_GT(row.hot.samples, 0u);
        EXPECT_GE(row.hot.entryPc, prog.codeBase);
    }
    // Hottest-first ordering.
    for (std::size_t i = 1; i < tr.size(); ++i)
        EXPECT_GE(tr[i - 1].hot.samples, tr[i].hot.samples);
}

// --- determinism across the async pipeline ------------------------------

TEST(SamplingProfiler, DeterministicAsyncMatchesSynchronousHeatmap)
{
    workload::Program prog = bigProgram(2);

    auto heatmap = [&](const vmm::VmmConfig &cfg) {
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, cfg);
        x86::CpuState cpu = prog.initialState();
        EXPECT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);
        return vm.profiler().ranking();
    };

    vmm::VmmConfig sync_cfg = engine::EngineConfig::vmSoft();
    sync_cfg.profileSamplePeriod = 128;
    vmm::VmmConfig async_cfg = engine::EngineConfig::vmSoftAsync();
    async_cfg.asyncDeterministic = true;
    async_cfg.profileSamplePeriod = 128;

    std::vector<engine::SamplingProfiler::PageRank> a =
        heatmap(sync_cfg);
    std::vector<engine::SamplingProfiler::PageRank> b =
        heatmap(async_cfg);

    // The deterministic async pipeline replays the synchronous event
    // stream retire-for-retire, so the heatmaps are identical.
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].page, b[i].page);
        EXPECT_EQ(a[i].hot.total, b[i].hot.total);
        for (unsigned s = 0; s < engine::NUM_HOT_STAGES; ++s)
            EXPECT_EQ(a[i].hot.byStage[s], b[i].hot.byStage[s]);
    }
}

TEST(SamplingProfiler, RerunIsBitIdentical)
{
    workload::Program prog = bigProgram(3);
    auto once = [&] {
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
        cfg.profileSamplePeriod = 64;
        vmm::Vmm vm(mem, cfg);
        x86::CpuState cpu = prog.initialState();
        EXPECT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);
        return vm.profiler().dumpJson();
    };
    EXPECT_EQ(once(), once());
}

// --- interval snapshots -------------------------------------------------

TEST(Snapshots, DeltasTelescopeToEndOfRunTotals)
{
    workload::Program prog = bigProgram();
    x86::Memory mem;
    prog.loadInto(mem);

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.snapshotEveryInsns = 20'000;
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();
    ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);
    vm.snapshotNow(); // final row at the end-of-run clock

    const SnapshotSeries &sn = vm.snapshots();
    ASSERT_GE(sn.rows(), 2u);

    // Monotonic snapshot clocks, one per interval boundary.
    for (std::size_t r = 1; r < sn.rows(); ++r)
        EXPECT_GT(sn.clockAt(r), sn.clockAt(r - 1));

    // The last row captures the end-of-run totals, and the interval
    // deltas telescope back to exactly that total.
    const std::size_t last = sn.rows() - 1;
    EXPECT_DOUBLE_EQ(sn.at(last, "vmm.insns.total"),
                     static_cast<double>(vm.stats().totalRetired()));
    double delta_sum = 0.0;
    for (std::size_t r = 0; r < sn.rows(); ++r) {
        double d = sn.delta(r, "vmm.insns.total");
        EXPECT_GE(d, 0.0); // retire counters never go backwards
        delta_sum += d;
    }
    EXPECT_DOUBLE_EQ(delta_sum, sn.at(last, "vmm.insns.total"));

    std::string js = sn.dumpJson();
    EXPECT_NE(js.find("\"rows\""), std::string::npos);
    EXPECT_NE(js.find("vmm.insns.total"), std::string::npos);
    EXPECT_NE(js.find("\"deltas\""), std::string::npos);
}

TEST(Snapshots, SeriesCapturesOnlyScalarAndGaugeStats)
{
    StatRegistry reg;
    reg.set("vmm.insns.total", 123.0);
    double backing = 9.0;
    reg.gauge("dbt.used", [&backing] { return backing; });
    reg.running("vmm.block_size").add(4.0);
    reg.histogram("engine.lat", 2.0, 8).add(100.0);

    SnapshotSeries sn;
    sn.take(reg, 1000);
    ASSERT_EQ(sn.rows(), 1u);
    EXPECT_DOUBLE_EQ(sn.at(0, "vmm.insns.total"), 123.0);
    EXPECT_DOUBLE_EQ(sn.at(0, "dbt.used"), 9.0);
    // Distributions are not snapshot material.
    EXPECT_EQ(sn.dumpJson().find("vmm.block_size"), std::string::npos);
    EXPECT_EQ(sn.dumpJson().find("engine.lat"), std::string::npos);
}

// --- percentile export --------------------------------------------------

TEST(StatsJson, HistogramLeavesCarryTailPercentiles)
{
    StatRegistry reg;
    LogHistogram &h = reg.histogram("engine.async.latency.total_ns",
                                    2.0, 40);
    for (int i = 0; i < 95; ++i)
        h.add(1000.0);
    for (int i = 0; i < 5; ++i)
        h.add(1e6); // a 5% tail of slow outliers
    std::string js = reg.dumpJson();
    EXPECT_NE(js.find("\"p50\""), std::string::npos);
    EXPECT_NE(js.find("\"p95\""), std::string::npos);
    EXPECT_NE(js.find("\"p99\""), std::string::npos);
    // The p99 leaf reflects the tail, not the median.
    EXPECT_GT(h.percentile(99), h.percentile(50) * 10.0);
}

// --- flush storms and abnormal-exit dumps -------------------------------

TEST(FlightSink, FlushStormTriggersAutomaticDump)
{
    const std::string path = "test_profiler_storm_dump.txt";
    std::remove(path.c_str());

    workload::Program prog = bigProgram();
    x86::Memory mem;
    prog.loadInto(mem);

    // A BBT arena far smaller than the translated working set forces
    // flush-refill thrash; two flushes inside the window is a storm.
    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.bbtCacheBytes = u64{8} << 10;
    cfg.enableSbt = false;
    cfg.flushStormThreshold = 2;
    cfg.flushStormWindowInsns = u64{1} << 30;
    cfg.flightDumpPath = path;
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();
    ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);

    ASSERT_GT(vm.stats().bbtCacheFlushes, 1u);
    EXPECT_GT(vm.flightSink().storms(), 0u);
    EXPECT_GT(vm.flightSink().stormDumps(), 0u);
    std::string dump = slurp(path);
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("cache-flush"), std::string::npos);
    std::remove(path.c_str());
}

TEST(FlightSink, StormCountingWorksWithoutADumpPath)
{
    FlightRecorder rec(64);
    engine::FlightSink sink(rec, 2, 1u << 20, "");
    engine::StageEvent flush;
    flush.stage = TracePhase::CacheFlush;
    flush.instant = true;
    for (int i = 0; i < 4; ++i)
        sink.onEvent(flush);
    EXPECT_EQ(sink.storms(), 2u);
    EXPECT_EQ(sink.stormDumps(), 0u);
    EXPECT_EQ(rec.recorded(), 4u);
}

TEST(FlightDump, AbnormalExitWritesThePostMortem)
{
    const std::string path = "test_profiler_crash_dump.txt";
    std::remove(path.c_str());

    // Garbage bytes at the entry point: the decoder faults on the
    // first dispatch and the run loop dumps the flight recorder.
    x86::Memory mem;
    const std::vector<u8> garbage{0x0f, 0xff, 0xff, 0xff};
    mem.writeBlock(0x00400000, garbage);
    x86::CpuState cpu;
    cpu.eip = 0x00400000;

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.flightDumpPath = path;
    vmm::Vmm vm(mem, cfg);
    EXPECT_EQ(vm.run(cpu, 1000), x86::Exit::DecodeFault);
    std::string dump = slurp(path);
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    std::remove(path.c_str());
}

// --- async pipeline latency telemetry -----------------------------------

TEST(AsyncLatency, DrainedJobsPopulateTheHistograms)
{
    workload::Program prog = bigProgram();
    x86::Memory mem;
    prog.loadInto(mem);

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoftAsync();
    cfg.asyncDeterministic = true; // every request installs in-run
    cfg.hotThreshold = 50;
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();
    ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);

    const engine::AsyncSbtEngine *async = vm.asyncSbtEngine();
    ASSERT_NE(async, nullptr);
    ASSERT_GT(vm.stats().asyncSbtInstalls, 0u);

    const double n = static_cast<double>(vm.stats().asyncSbtInstalls);
    EXPECT_DOUBLE_EQ(async->queueLatency().totalWeight(), n);
    EXPECT_DOUBLE_EQ(async->optimizeLatency().totalWeight(), n);
    EXPECT_DOUBLE_EQ(async->drainLatency().totalWeight(), n);
    EXPECT_DOUBLE_EQ(async->totalLatency().totalWeight(), n);
    // Total covers its parts; optimize really took time.
    EXPECT_GT(async->optimizeLatency().percentile(50), 0.0);
    EXPECT_GE(async->totalLatency().percentile(50),
              async->optimizeLatency().percentile(50));

    StatRegistry reg;
    vm.exportStats(reg);
    std::string js = reg.dumpJson();
    EXPECT_NE(js.find("\"latency\""), std::string::npos);
    EXPECT_NE(js.find("\"p99\""), std::string::npos);
}

/**
 * TSan-targeted: free-running background optimizations while the
 * dispatch thread samples every event. The profiler and flight
 * recorder are dispatch-thread-only; this run fails under
 * -fsanitize=thread if any install/drain path breaks that contract.
 */
TEST(AsyncProfile, SamplingDuringFreeRunningAsyncInstalls)
{
    workload::Program prog = bigProgram();
    for (unsigned round = 0; round < 3; ++round) {
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::VmmConfig cfg = engine::EngineConfig::vmSoftAsync();
        cfg.hotThreshold = 50;
        cfg.profileSamplePeriod = 16;
        cfg.flightRecorderEvents = 256;
        vmm::Vmm vm(mem, cfg);
        x86::CpuState cpu = prog.initialState();
        ASSERT_EQ(vm.run(cpu, u64{1} << 40), x86::Exit::Halted);
        EXPECT_GT(vm.profiler().samples(), 0u);
        EXPECT_GT(vm.flightRecorder().recorded(), 0u);
        StatRegistry reg;
        vm.exportStats(reg); // barriers the workers before reading
        EXPECT_GT(reg.value("engine.profiler.samples"), 0.0);
    }
}

} // namespace
} // namespace cdvm
