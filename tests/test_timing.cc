/**
 * @file
 * Timing-layer tests: machine configurations, the OoO pipeline model's
 * structural behaviours, and invariants of the startup simulator.
 */

#include <gtest/gtest.h>

#include "analysis/startup_curve.hh"
#include "timing/machine_config.hh"
#include "timing/pipeline.hh"
#include "timing/startup_sim.hh"
#include "workload/winstone.hh"

namespace cdvm::timing
{
namespace
{

uops::Uop
alu(u8 d, u8 s1, u8 s2)
{
    uops::Uop u;
    u.op = uops::UOp::Add;
    u.dst = d;
    u.src1 = s1;
    u.src2 = s2;
    u.writeFlags = false;
    return u;
}

TEST(MachineConfig, PresetsMatchTable2)
{
    auto machines = MachineConfig::table2();
    ASSERT_EQ(machines.size(), 4u);
    EXPECT_EQ(machines[0].kind, MachineKind::RefSuperscalar);
    EXPECT_EQ(machines[1].kind, MachineKind::VmSoft);
    EXPECT_EQ(machines[2].kind, MachineKind::VmBe);
    EXPECT_EQ(machines[3].kind, MachineKind::VmFe);

    EXPECT_DOUBLE_EQ(machines[1].costs.bbtCyclesPerInsn, 83.0);
    EXPECT_DOUBLE_EQ(machines[1].costs.bbtNativePerInsn, 105.0);
    EXPECT_DOUBLE_EQ(machines[2].costs.bbtCyclesPerInsn, 20.0);
    EXPECT_DOUBLE_EQ(machines[3].costs.bbtCyclesPerInsn, 0.0);
    for (const auto &m : machines) {
        EXPECT_EQ(m.pipeline.width, 3u);
        EXPECT_EQ(m.pipeline.robEntries, 128u);
        EXPECT_EQ(m.memory.memLatency, 168u);
    }
    EXPECT_EQ(MachineConfig::vmInterp().hotThreshold, 25u);
}

TEST(Pipeline, WidthBoundsIpc)
{
    // Fully independent single-cycle ops: IPC limited by ALU units /
    // width.
    uops::UopVec v;
    for (u8 i = 0; i < 12; ++i)
        v.push_back(alu(i % 24, (i + 1) % 24 + 1, uops::UREG_NONE));
    // Make them truly independent.
    for (u8 i = 0; i < 12; ++i) {
        v[i].dst = i;
        v[i].src1 = 24;
        v[i].src2 = 25;
    }
    PipelineSim sim;
    PipelineResult r = sim.run(v, 2000);
    EXPECT_GT(r.uopIpc(), 2.5);
    EXPECT_LE(r.uopIpc(), 3.05);
}

TEST(Pipeline, DependenceChainSerializes)
{
    // A strict chain executes at ~1 IPC.
    uops::UopVec v;
    for (int i = 0; i < 12; ++i)
        v.push_back(alu(0, 0, 1));
    PipelineSim sim;
    PipelineResult r = sim.run(v, 2000);
    EXPECT_LT(r.uopIpc(), 1.2);
    EXPECT_GT(r.uopIpc(), 0.8);
}

TEST(Pipeline, FusionSpeedsUpDependentPairs)
{
    // Alternating producer/consumer pairs: fusion should approach 2x.
    uops::UopVec v;
    for (int i = 0; i < 8; ++i) {
        uops::Uop head = alu(0, 2, 3);
        head.fusedHead = true;
        v.push_back(head);
        v.push_back(alu(1, 0, 4)); // consumes r0
        // Next pair reads fresh sources: break the cross-pair chain.
        v.push_back(alu(2, 5, 6));
        v.back().dst = 2;
    }
    PipelineSim sim;
    PipelineResult fused = sim.run(v, 2000);
    PipelineResult plain = sim.run(unfused(v), 2000);
    EXPECT_GT(fused.uopIpc(), plain.uopIpc() * 1.05);
    EXPECT_GT(fused.fusedFraction(), 0.5);
}

TEST(Pipeline, LoadLatencyVisible)
{
    // load -> use chains run slower than ALU chains.
    uops::UopVec loads;
    for (int i = 0; i < 8; ++i) {
        uops::Uop ld;
        ld.op = uops::UOp::Ld;
        ld.dst = 0;
        ld.src1 = 0;
        ld.hasImm = true;
        loads.push_back(ld);
    }
    uops::UopVec alus;
    for (int i = 0; i < 8; ++i)
        alus.push_back(alu(0, 0, 1));
    PipelineSim sim;
    PipelineResult rl = sim.run(loads, 1000);
    PipelineResult ra = sim.run(alus, 1000);
    EXPECT_LT(rl.uopIpc() * 2.0, ra.uopIpc() + 0.01);
}

TEST(StartupSim, CycleConservation)
{
    workload::AppProfile app = workload::winstoneAverage(3'000'000);
    for (const MachineConfig &m : MachineConfig::table2()) {
        StartupSim sim(m, app);
        StartupResult r = sim.run();
        // Category cycles must sum to total cycles (within rounding).
        double sum = 0;
        for (double c : r.catCycles)
            sum += c;
        EXPECT_NEAR(sum, static_cast<double>(r.totalCycles),
                    static_cast<double>(r.totalCycles) * 1e-6 + 2)
            << m.name;
        // Mode instruction counts must sum to the trace length.
        EXPECT_EQ(r.insnsCold + r.insnsBbt + r.insnsSbt, r.totalInsns)
            << m.name;
        // Samples are monotone in both axes.
        for (std::size_t i = 1; i < r.samples.size(); ++i) {
            EXPECT_GE(r.samples[i].cycles, r.samples[i - 1].cycles);
            EXPECT_GE(r.samples[i].insns, r.samples[i - 1].insns);
        }
    }
}

TEST(StartupSim, MachineInvariants)
{
    workload::AppProfile app = workload::winstoneAverage(3'000'000);

    StartupResult ref =
        StartupSim(MachineConfig::refSuperscalar(), app).run();
    StartupResult soft = StartupSim(MachineConfig::vmSoft(), app).run();
    StartupResult be = StartupSim(MachineConfig::vmBe(), app).run();
    StartupResult fe = StartupSim(MachineConfig::vmFe(), app).run();

    // Ref never translates; decoders always on.
    EXPECT_EQ(ref.staticInsnsBbt, 0u);
    EXPECT_EQ(ref.insnsSbt, 0u);
    EXPECT_NEAR(ref.decodeActiveCycles,
                static_cast<double>(ref.totalCycles),
                static_cast<double>(ref.totalCycles) * 1e-9);

    // VM.soft has no hardware decoders at all.
    EXPECT_DOUBLE_EQ(soft.decodeActiveCycles, 0.0);
    // VM.be's decoder is on only during translation: a small share.
    EXPECT_GT(be.decodeActiveCycles, 0.0);
    EXPECT_LT(be.decodeActiveCycles, 0.1 * be.totalCycles);
    // VM.fe's decoders are on exactly during cold (x86-mode) cycles.
    EXPECT_NEAR(fe.decodeActiveCycles,
                fe.catCycles[static_cast<size_t>(CycleCat::ColdExec)],
                1.0);

    // The assisted startup hierarchy: fe <= be <= soft total cycles.
    EXPECT_LE(fe.totalCycles, be.totalCycles);
    EXPECT_LE(be.totalCycles, soft.totalCycles);

    // soft and be translate the same code; fe translates none.
    EXPECT_EQ(soft.staticInsnsBbt, be.staticInsnsBbt);
    EXPECT_EQ(fe.staticInsnsBbt, 0u);
    // All VM machines agree on hotspot identification.
    EXPECT_EQ(soft.staticInsnsSbt, fe.staticInsnsSbt);
    EXPECT_EQ(soft.insnsSbt, fe.insnsSbt);
}

TEST(StartupSim, BbtXlateCostScalesWithAssist)
{
    workload::AppProfile app = workload::winstoneAverage(3'000'000);
    StartupResult soft = StartupSim(MachineConfig::vmSoft(), app).run();
    StartupResult be = StartupSim(MachineConfig::vmBe(), app).run();
    double soft_x =
        soft.catCycles[static_cast<size_t>(CycleCat::BbtXlate)];
    double be_x = be.catCycles[static_cast<size_t>(CycleCat::BbtXlate)];
    // The core translation work shrinks 83 -> 20 cycles/insn; memory
    // traffic is shared, so expect between 2x and 4.2x overall.
    EXPECT_GT(soft_x / be_x, 1.8);
    EXPECT_LT(soft_x / be_x, 4.5);
}

TEST(StartupCurveAnalysis, BreakevenSemantics)
{
    workload::AppProfile app = workload::winstoneAverage(4'000'000);
    StartupResult ref =
        StartupSim(MachineConfig::refSuperscalar(), app).run();
    StartupResult fe = StartupSim(MachineConfig::vmFe(), app).run();
    StartupResult interp =
        StartupSim(MachineConfig::vmInterp(), app).run();

    // The interpreter-based VM must not break even on a short trace.
    EXPECT_LT(analysis::breakevenCycle(interp, ref), 0.0);
    // insnsAtCycle is monotone and clamps at the end.
    double a = analysis::insnsAtCycle(ref, 1e5);
    double b = analysis::insnsAtCycle(ref, 1e6);
    EXPECT_LE(a, b);
    EXPECT_DOUBLE_EQ(
        analysis::insnsAtCycle(ref, 1e18),
        static_cast<double>(ref.totalInsns));
    // Normalized curve values are positive and bounded.
    Series s = analysis::normalizedIpcCurve(ref, "ref");
    for (double y : s.y) {
        EXPECT_GE(y, 0.0);
        EXPECT_LE(y, 1.5);
    }
    (void)fe;
}

} // namespace
} // namespace cdvm::timing
