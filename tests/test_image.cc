/**
 * @file
 * The zero-copy translation image (dbt/image) and its warm-start,
 * sharing and migration paths.
 *
 * Format robustness: a built image round-trips to an equal repository;
 * truncation at any point (including every section boundary) and
 * arbitrary bit flips are rejected with a typed error -- never a
 * crash, never a parse -- and a corrupt file leaves the VM cleanly
 * cold.
 *
 * Zero-copy: a mapped-image install performs zero per-record body
 * copies (the acceptance stat), yet retires bit-identical state.
 *
 * Sharing: one writer appending generations races N reader contexts
 * installing from the same store; compaction publishes never
 * invalidate a held generation; a 256-context fleet booting from one
 * shared image retires identically to per-context private loads.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbt/image.hh"
#include "dbt/persist.hh"
#include "engine/cache_mgr.hh"
#include "engine/warm_start.hh"
#include "fleet/fleet.hh"
#include "helpers.hh"

#ifndef CDVM_TEST_SRC_DIR
#define CDVM_TEST_SRC_DIR "."
#endif

namespace cdvm
{
namespace
{

using test::RunResult;
using test::runInterp;
using test::runVmm;
using test::sameOutcome;

vmm::VmmConfig
cfgSoft()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.hotThreshold = 30; // low threshold so SBT entries exist too
    return c;
}

workload::Program
testProgram(u64 seed = 7)
{
    workload::ProgramParams pp;
    pp.seed = seed;
    return workload::generateProgram(pp);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Run a program cold and capture its translation map. */
dbt::Repository
capturedRepo(const workload::Program &prog, x86::Memory &mem)
{
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(mem, cfgSoft());
    vm.run(cpu, 10'000'000);
    return dbt::capture(vm.translations(), mem);
}

/** Build an image blob from one repository. */
std::vector<u8>
builtImage(const dbt::Repository &repo, u64 budget = 0)
{
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{budget, 1});
    b.add(repo);
    return b.build();
}

/** Adopt a blob, asserting success. */
dbt::TransImage
adopted(std::span<const u8> bytes)
{
    dbt::TransImage img;
    EXPECT_EQ(dbt::TransImage::adopt(bytes, img), dbt::LoadError::None);
    return img;
}

/** Run a plain Vmm on prog until >= target retired at a HLT (the
 *  fleet's completion rule, so solo runs compare exactly). */
void
runToTarget(vmm::Vmm &vm, const workload::Program &prog, u64 target)
{
    x86::CpuState cpu = prog.initialState();
    for (;;) {
        // Past the target, keep granting budget until the HLT (the
        // fleet's completion rule): run(cpu, 0) would retire nothing.
        const u64 done = vm.stats().totalRetired();
        const x86::Exit e =
            vm.run(cpu, done < target ? target - done : target);
        if (e == x86::Exit::Halted) {
            if (vm.stats().totalRetired() >= target)
                return;
            cpu = prog.initialState();
        } else {
            ASSERT_EQ(e, x86::Exit::None);
        }
    }
}

/** A private install target: guest memory + the engine structures a
 *  warm install writes into. */
struct InstallTarget
{
    x86::Memory mem;
    engine::EngineConfig cfg = cfgSoft();
    engine::EngineStats stats;
    engine::EventStream events;
    engine::BranchProfile prof;
    engine::CodeCacheManager ccm{mem, cfg, stats, events};

    explicit InstallTarget(const workload::Program &prog)
    {
        prog.loadInto(mem);
    }
};

// ---------------------------------------------------------------------
// Format: round trip, header sanity
// ---------------------------------------------------------------------

TEST(Image, RoundTripFieldEquality)
{
    x86::Memory mem;
    dbt::Repository repo = capturedRepo(testProgram(), mem);
    ASSERT_FALSE(repo.entries.empty());
    ASSERT_FALSE(repo.pageHashes.empty());

    const std::vector<u8> blob = builtImage(repo);
    dbt::TransImage img = adopted(blob);
    ASSERT_EQ(img.recordCount(), repo.entries.size());

    const dbt::Repository back = img.toRepository();
    ASSERT_EQ(back.entries.size(), repo.entries.size());
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        const dbt::SavedTranslation &a = repo.entries[i];
        const dbt::SavedTranslation &b = back.entries[i];
        EXPECT_EQ(b.kind, a.kind) << i;
        EXPECT_EQ(b.entryPc, a.entryPc) << i;
        EXPECT_EQ(b.numX86Insns, a.numX86Insns) << i;
        EXPECT_EQ(b.x86Bytes, a.x86Bytes) << i;
        EXPECT_EQ(b.fallthroughPc, a.fallthroughPc) << i;
        EXPECT_EQ(b.containsComplex, a.containsComplex) << i;
        EXPECT_EQ(b.endsInCti, a.endsInCti) << i;
        EXPECT_EQ(b.endsInCondBranch, a.endsInCondBranch) << i;
        EXPECT_EQ(static_cast<int>(b.provenance),
                  static_cast<int>(a.provenance))
            << i;
        EXPECT_EQ(b.condBranchTarget, a.condBranchTarget) << i;
        EXPECT_EQ(b.condBranchPc, a.condBranchPc) << i;
        EXPECT_EQ(b.execCount, a.execCount) << i;
        EXPECT_EQ(b.takenCount, a.takenCount) << i;
        EXPECT_EQ(b.notTakenCount, a.notTakenCount) << i;
        for (unsigned c = 0; c < 2; ++c) {
            EXPECT_EQ(b.chains[c].targetPc, a.chains[c].targetPc) << i;
            EXPECT_EQ(b.chains[c].record, a.chains[c].record) << i;
        }
        EXPECT_EQ(b.x86pcs, a.x86pcs) << i;
        EXPECT_EQ(b.uopPcs, a.uopPcs) << i;
        EXPECT_EQ(b.body, a.body) << i;
    }

    // The page index survives (both sides sorted by page).
    std::vector<std::pair<Addr, u64>> want = repo.pageHashes;
    std::sort(want.begin(), want.end());
    ASSERT_EQ(back.pageHashes.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(back.pageHashes[i], want[i]) << i;

    // Adopting the same bytes twice yields the same image.
    dbt::TransImage img2 = adopted(blob);
    EXPECT_EQ(img2.recordCount(), img.recordCount());
    EXPECT_EQ(img2.header().checksum, img.header().checksum);
}

TEST(Image, BranchProfileRoundTrip)
{
    workload::Program prog = testProgram();
    x86::Memory mem;
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(mem, cfgSoft());
    vm.run(cpu, 10'000'000);
    const dbt::Repository repo = vm.captureWarmStart();
    ASSERT_FALSE(repo.branchProfile.empty());

    dbt::TransImage img = adopted(builtImage(repo));
    ASSERT_EQ(img.branchProfile().size(), repo.branchProfile.size());

    std::vector<dbt::SavedBranchStat> want = repo.branchProfile;
    std::sort(want.begin(), want.end(),
              [](const auto &a, const auto &b) { return a.pc < b.pc; });
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(img.branchProfile()[i].pc, want[i].pc) << i;
        EXPECT_EQ(img.branchProfile()[i].taken, want[i].taken) << i;
        EXPECT_EQ(img.branchProfile()[i].notTaken, want[i].notTaken)
            << i;
    }
}

TEST(Image, HeaderAndSectionSanity)
{
    x86::Memory mem;
    const std::vector<u8> blob =
        builtImage(capturedRepo(testProgram(), mem));
    dbt::TransImage img = adopted(blob);

    const dbt::ImageHeader &h = img.header();
    EXPECT_EQ(h.magic, dbt::IMAGE_MAGIC);
    EXPECT_EQ(h.version, dbt::IMAGE_VERSION);
    EXPECT_EQ(h.sectionCount, dbt::IMAGE_NUM_SECTIONS);
    EXPECT_EQ(h.totalBytes, blob.size());
    EXPECT_EQ(h.generation, 1u);
    EXPECT_EQ(h.dedupeHits, 0u);
    EXPECT_EQ(h.evicted, 0u);

    u64 prevEnd = sizeof(dbt::ImageHeader);
    for (u32 s = 0; s < dbt::IMAGE_NUM_SECTIONS; ++s) {
        const dbt::ImageSectionDesc &d = h.sections[s];
        EXPECT_EQ(d.offset % 8, 0u) << s;
        EXPECT_GE(d.offset, prevEnd) << s;
        EXPECT_LE(d.offset + d.bytes, h.totalBytes) << s;
        prevEnd = d.offset + d.bytes;
    }

    // The page index and dedupe index are sorted (binary-searchable).
    const auto pages = img.pageHashes();
    for (std::size_t i = 1; i < pages.size(); ++i)
        EXPECT_LT(pages[i - 1].page, pages[i].page);
    const auto dd = img.dedupeIndex();
    ASSERT_EQ(dd.size(), img.recordCount());
    for (std::size_t i = 1; i < dd.size(); ++i)
        EXPECT_LE(dd[i - 1].key, dd[i].key);
    for (const dbt::ImageDedupeEntry &e : dd)
        EXPECT_LT(e.record, img.recordCount());
}

// ---------------------------------------------------------------------
// Rejection: truncation and bit flips, always typed, never UB
// ---------------------------------------------------------------------

TEST(Image, TruncationSweepTyped)
{
    x86::Memory mem;
    const std::vector<u8> blob =
        builtImage(capturedRepo(testProgram(), mem));
    dbt::TransImage whole = adopted(blob);

    // Every section boundary exactly, plus a sweep over the body.
    std::vector<std::size_t> cuts;
    for (u32 s = 0; s < dbt::IMAGE_NUM_SECTIONS; ++s) {
        const dbt::ImageSectionDesc &d = whole.header().sections[s];
        cuts.push_back(d.offset);
        cuts.push_back(d.offset + d.bytes);
    }
    const std::size_t step = std::max<std::size_t>(1, blob.size() / 97);
    for (std::size_t len = 0; len < blob.size(); len += step)
        cuts.push_back(len);

    for (std::size_t len : cuts) {
        if (len >= blob.size())
            continue;
        dbt::TransImage out;
        const dbt::LoadError err = dbt::TransImage::adopt(
            std::span<const u8>(blob.data(), len), out);
        EXPECT_EQ(err, dbt::LoadError::Truncated) << "len=" << len;
    }

    // Trailing garbage after totalBytes is rejected too (adopt takes
    // exactly one image; only files may carry delta segments).
    std::vector<u8> padded = blob;
    padded.resize(padded.size() + 64, 0xAB);
    dbt::TransImage out;
    EXPECT_EQ(dbt::TransImage::adopt(padded, out),
              dbt::LoadError::Corrupt);
}

TEST(Image, BitFlipSweepTyped)
{
    x86::Memory mem;
    const std::vector<u8> blob =
        builtImage(capturedRepo(testProgram(), mem));

    const std::size_t step = std::max<std::size_t>(1, blob.size() / 61);
    for (std::size_t pos = 0; pos < blob.size(); pos += step) {
        std::vector<u8> bad = blob;
        bad[pos] ^= 0x40;
        dbt::TransImage out;
        const dbt::LoadError err = dbt::TransImage::adopt(bad, out);
        EXPECT_NE(err, dbt::LoadError::None) << "pos=" << pos;
        if (pos < 8) {
            EXPECT_EQ(err, dbt::LoadError::BadMagic) << "pos=" << pos;
        } else if (pos < 12) {
            EXPECT_EQ(err, dbt::LoadError::BadVersion) << "pos=" << pos;
        } else {
            // Size, checksum, index or body damage: structural.
            EXPECT_TRUE(err == dbt::LoadError::Truncated ||
                        err == dbt::LoadError::Corrupt)
                << "pos=" << pos << " err=" << static_cast<int>(err);
        }
    }
}

TEST(Image, CorruptFileFallsBackCold)
{
    workload::Program prog = testProgram();
    x86::Memory pmem;
    std::vector<u8> blob = builtImage(capturedRepo(prog, pmem));

    // Flip one byte deep in the record section and write it out.
    blob[blob.size() / 2] ^= 0x01;
    const std::string path = tempPath("image_corrupt.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, blob));

    vmm::VmmConfig cfg = cfgSoft();
    cfg.warmStartLoadPath = path;
    x86::Memory mem, ref_mem;
    vmm::VmmStats st;
    const RunResult got = runVmm(prog, mem, cfg, &st);
    const RunResult ref = runInterp(prog, ref_mem);
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem));
    EXPECT_EQ(st.warmLoaded, 0u);
    EXPECT_EQ(st.warmInstalled, 0u);
    EXPECT_EQ(st.warmMappedBytes, 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Content addressing: staleness and dedupe
// ---------------------------------------------------------------------

TEST(Image, StalePageHashInvalidation)
{
    // Capture program A, then boot program B (different code at the
    // same addresses): every mismatching record silently cold-falls.
    workload::Program progA = testProgram(7);
    x86::Memory memA;
    const std::vector<u8> blob = builtImage(capturedRepo(progA, memA));
    const std::string path = tempPath("image_stale.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, blob));

    workload::Program progB = testProgram(8);
    vmm::VmmConfig cfg = cfgSoft();
    cfg.warmStartLoadPath = path;
    x86::Memory mem, ref_mem;
    vmm::VmmStats st;
    const RunResult got = runVmm(progB, mem, cfg, &st);
    const RunResult ref = runInterp(progB, ref_mem);
    EXPECT_TRUE(sameOutcome(progB, ref, ref_mem, got, mem));

    EXPECT_GT(st.warmLoaded, 0u);
    EXPECT_GT(st.warmInvalidated, 0u);
    EXPECT_EQ(st.warmInstalled + st.warmInvalidated, st.warmLoaded);
    EXPECT_EQ(st.warmBodyCopies, 0u);
    std::remove(path.c_str());
}

TEST(Image, DedupeAcrossContexts)
{
    // Two contexts booting the same guest image capture identical
    // translations; the builder keeps one physical record per content.
    workload::Program prog = testProgram(11);
    x86::Memory m1, m2;
    const dbt::Repository r1 = capturedRepo(prog, m1);
    const dbt::Repository r2 = capturedRepo(prog, m2);
    ASSERT_FALSE(r1.entries.empty());
    ASSERT_EQ(r1.entries.size(), r2.entries.size());

    dbt::ImageBuilder b;
    b.add(r1);
    b.add(r2);
    EXPECT_EQ(b.dedupeHits(), r2.entries.size());
    const std::vector<u8> blob = b.build();

    dbt::TransImage img = adopted(blob);
    EXPECT_EQ(img.recordCount(), r1.entries.size());
    EXPECT_EQ(img.header().dedupeHits, r2.entries.size());

    // Both contexts install the full set from the shared record.
    InstallTarget t1(prog), t2(prog);
    const engine::WarmStartReport a =
        engine::warmStartInstall(img, t1.mem, t1.ccm, t1.prof);
    const engine::WarmStartReport c =
        engine::warmStartInstall(img, t2.mem, t2.ccm, t2.prof);
    EXPECT_EQ(a.installed, img.recordCount());
    EXPECT_EQ(c.installed, img.recordCount());
    EXPECT_EQ(a.invalidated, 0u);
    EXPECT_EQ(c.invalidated, 0u);
}

TEST(Image, MergedImageKeepsConflictingClassesApart)
{
    // Two workload classes place *different* code at the same guest
    // addresses. A merged image must install each class's records
    // only in the matching context (per-record content addresses).
    workload::Program progA = testProgram(7);
    workload::Program progB = testProgram(8);
    x86::Memory mA, mB;
    const dbt::Repository rA = capturedRepo(progA, mA);
    const dbt::Repository rB = capturedRepo(progB, mB);

    dbt::ImageBuilder b;
    b.add(rA);
    b.add(rB);
    dbt::TransImage img = adopted(b.build());
    ASSERT_GT(img.recordCount(), rA.entries.size());

    InstallTarget tA(progA), tB(progB);
    const engine::WarmStartReport repA =
        engine::warmStartInstall(img, tA.mem, tA.ccm, tA.prof);
    const engine::WarmStartReport repB =
        engine::warmStartInstall(img, tB.mem, tB.ccm, tB.prof);

    // Every record either installs or invalidates, per context, and
    // each context accepts at least its own class's captures.
    EXPECT_EQ(repA.installed + repA.invalidated, img.recordCount());
    EXPECT_EQ(repB.installed + repB.invalidated, img.recordCount());
    EXPECT_GE(repA.installed, rA.entries.size());
    EXPECT_GT(repA.invalidated, 0u);
    EXPECT_GE(repB.installed, rB.entries.size());
    EXPECT_GT(repB.invalidated, 0u);
}

// ---------------------------------------------------------------------
// Zero-copy: the acceptance stat and bit-identical warm runs
// ---------------------------------------------------------------------

TEST(Image, ZeroCopyInstallStats)
{
    workload::Program prog = testProgram();
    x86::Memory pmem;
    const dbt::Repository repo = capturedRepo(prog, pmem);
    dbt::TransImage img = adopted(builtImage(repo));

    // Legacy v1 path: one decode + copy per install.
    InstallTarget legacy(prog);
    const engine::WarmStartReport lr = engine::warmStartInstall(
        repo, legacy.mem, legacy.ccm, legacy.prof);
    ASSERT_GT(lr.installed, 0u);
    EXPECT_EQ(lr.bodyCopies, lr.installed);
    EXPECT_EQ(lr.mappedBytes, 0u);

    // Mapped path: zero per-record body copies, same acceptance.
    InstallTarget mapped(prog);
    const engine::WarmStartReport mr = engine::warmStartInstall(
        img, mapped.mem, mapped.ccm, mapped.prof);
    EXPECT_EQ(mr.bodyCopies, 0u);
    EXPECT_EQ(mr.installed, lr.installed);
    EXPECT_EQ(mr.installedInsns, lr.installedInsns);
    EXPECT_EQ(mr.invalidated, lr.invalidated);
    EXPECT_EQ(mr.mappedBytes, img.sizeBytes());
    EXPECT_EQ(mr.relocations, lr.relocations);

    // Installed translations really are views into the image.
    for (std::size_t i = 0; i < img.recordCount(); ++i) {
        const dbt::TransImage::RecordView v = img.record(i);
        const dbt::Translation *t =
            mapped.ccm.lookup(v.hdr->entryPc,
                              static_cast<dbt::TransKind>(v.hdr->kind));
        ASSERT_NE(t, nullptr) << i;
        EXPECT_TRUE(t->mappedBody()) << i;
        EXPECT_EQ(t->code().data(), v.uops.data()) << i;
        EXPECT_EQ(t->pcSpan().data(), v.x86pcs.data()) << i;
    }
}

TEST(Image, WarmRunBitIdenticalToCold)
{
    workload::Program prog = testProgram(21);
    const std::string path = tempPath("image_warm.cdvmimg");

    // Cold run; save the v2 image through the engine's own save path.
    x86::Memory cold_mem;
    prog.loadInto(cold_mem);
    RunResult cold;
    cold.cpu = prog.initialState();
    {
        vmm::Vmm vm(cold_mem, cfgSoft());
        cold.exit = vm.run(cold.cpu, 10'000'000);
        cold.retired = cold.cpu.icount;
        ASSERT_TRUE(vm.saveWarmStart(path));
    }

    // The file really is a v2 zero-copy image, not a v1 repository.
    {
        dbt::TransImage img;
        ASSERT_EQ(dbt::TransImage::load(path, img),
                  dbt::LoadError::None);
        EXPECT_FALSE(img.migratedFromV1());
        EXPECT_GT(img.recordCount(), 0u);
    }

    // Warm run maps the image: zero body copies, identical retire.
    vmm::VmmConfig warm_cfg = cfgSoft();
    warm_cfg.warmStartLoadPath = path;
    x86::Memory warm_mem;
    vmm::VmmStats warm_st;
    const RunResult warm = runVmm(prog, warm_mem, warm_cfg, &warm_st);

    EXPECT_TRUE(sameOutcome(prog, cold, cold_mem, warm, warm_mem));
    EXPECT_EQ(warm.retired, cold.retired);
    EXPECT_GT(warm_st.warmInstalled, 0u);
    EXPECT_EQ(warm_st.warmBodyCopies, 0u);
    EXPECT_GT(warm_st.warmMappedBytes, 0u);
    EXPECT_GT(warm_st.warmRelocations, 0u);
    std::remove(path.c_str());
}

TEST(Image, TemplateProvenanceRoundTrip)
{
    workload::Program prog = testProgram(33);
    const std::string path = tempPath("image_tmpl.cdvmimg");

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoftTmpl();
    cfg.hotThreshold = 30;

    // Cold run under the template tier; the captured repository and
    // the image byte format both remember the producing tier.
    x86::Memory cold_mem;
    prog.loadInto(cold_mem);
    RunResult cold;
    cold.cpu = prog.initialState();
    {
        vmm::Vmm vm(cold_mem, cfg);
        cold.exit = vm.run(cold.cpu, 10'000'000);
        cold.retired = cold.cpu.icount;

        const dbt::Repository repo = vm.captureWarmStart();
        ASSERT_FALSE(repo.entries.empty());
        std::size_t tmpl = 0, sbt = 0;
        for (const auto &e : repo.entries) {
            tmpl += e.provenance == dbt::TransProvenance::TmplBbt;
            sbt += e.provenance == dbt::TransProvenance::Sbt;
        }
        EXPECT_GT(tmpl, 0u) << "no template-built blocks captured";
        EXPECT_GT(sbt, 0u) << "no superblocks captured";

        const dbt::Repository back =
            adopted(builtImage(repo)).toRepository();
        ASSERT_EQ(back.entries.size(), repo.entries.size());
        for (std::size_t i = 0; i < repo.entries.size(); ++i)
            EXPECT_EQ(static_cast<int>(back.entries[i].provenance),
                      static_cast<int>(repo.entries[i].provenance))
                << i;

        ASSERT_TRUE(vm.saveWarmStart(path));
    }

    // Warm boot: the zero-copy install restores provenance, the run
    // needs no cold template translation, and retire is identical.
    vmm::VmmConfig warm_cfg = cfg;
    warm_cfg.warmStartLoadPath = path;
    x86::Memory warm_mem;
    prog.loadInto(warm_mem);
    RunResult warm;
    warm.cpu = prog.initialState();
    vmm::Vmm vm(warm_mem, warm_cfg);

    std::size_t tmpl_installed = 0, installed = 0;
    vm.translations().forEach([&](const dbt::Translation &t) {
        ++installed;
        tmpl_installed +=
            t.provenance == dbt::TransProvenance::TmplBbt;
    });
    EXPECT_GT(installed, 0u) << "warm start installed nothing";
    EXPECT_GT(tmpl_installed, 0u)
        << "template provenance lost across the image";

    warm.exit = vm.run(warm.cpu, 10'000'000);
    warm.retired = warm.cpu.icount;
    EXPECT_TRUE(sameOutcome(prog, cold, cold_mem, warm, warm_mem));
    EXPECT_EQ(warm.retired, cold.retired);
    EXPECT_EQ(vm.stats().bbtTranslations, 0u)
        << "warm template boot fell back to cold translation";
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Migration: v1 files convert transparently, future versions reject
// ---------------------------------------------------------------------

TEST(Image, MigratesV1FileTransparently)
{
    x86::Memory mem;
    const dbt::Repository repo = capturedRepo(testProgram(), mem);
    const std::string path = tempPath("image_v1.cdvm");
    ASSERT_TRUE(dbt::saveFile(path, repo));

    dbt::TransImage img;
    ASSERT_EQ(dbt::TransImage::load(path, img), dbt::LoadError::None);
    EXPECT_TRUE(img.migratedFromV1());
    EXPECT_FALSE(img.isMapped());
    EXPECT_EQ(img.recordCount(), repo.entries.size());

    // Converted records still install against live memory.
    workload::Program prog = testProgram();
    InstallTarget t(prog);
    const engine::WarmStartReport rep =
        engine::warmStartInstall(img, t.mem, t.ccm, t.prof);
    EXPECT_EQ(rep.installed, img.recordCount());
    EXPECT_EQ(rep.bodyCopies, 0u);
    std::remove(path.c_str());
}

TEST(Image, GoldenV1FixtureMigrates)
{
    // A checked-in PR-5-era repository file; regenerate (after
    // verifying the format change is intended) with:
    //   CDVM_UPDATE_GOLDEN=1 ./test_image
    const std::string path =
        std::string(CDVM_TEST_SRC_DIR) + "/golden/repo_v1.cdvm";

    if (std::getenv("CDVM_UPDATE_GOLDEN")) {
        x86::Memory mem;
        const dbt::Repository repo =
            capturedRepo(testProgram(42), mem);
        ASSERT_TRUE(dbt::saveFile(path, repo));
        GTEST_SKIP() << "golden v1 fixture regenerated: " << path;
    }

    std::ifstream probe(path, std::ios::binary);
    ASSERT_TRUE(probe.good())
        << "missing golden file " << path
        << " (regenerate with CDVM_UPDATE_GOLDEN=1)";

    dbt::TransImage img;
    ASSERT_EQ(dbt::TransImage::load(path, img), dbt::LoadError::None);
    EXPECT_TRUE(img.migratedFromV1());
    EXPECT_GT(img.recordCount(), 0u);

    // The migrated image re-serializes into a valid v2 blob.
    dbt::ImageBuilder b;
    b.add(img);
    dbt::TransImage v2 = adopted(b.build());
    EXPECT_EQ(v2.recordCount(), img.recordCount());
}

TEST(Image, FutureVersionsRejected)
{
    x86::Memory mem;
    const dbt::Repository repo = capturedRepo(testProgram(), mem);

    // A v2 image from the future.
    std::vector<u8> blob = builtImage(repo);
    blob[8] = 0x7F; // ImageHeader::version low byte
    dbt::TransImage out;
    EXPECT_EQ(dbt::TransImage::adopt(blob, out),
              dbt::LoadError::BadVersion);

    // A v1 repository file from the future (version at offset 8 too).
    const std::string path = tempPath("image_future_v1.cdvm");
    ASSERT_TRUE(dbt::saveFile(path, repo));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(8);
        const char v = 0x7F;
        f.write(&v, 1);
    }
    dbt::TransImage img;
    EXPECT_EQ(dbt::TransImage::load(path, img),
              dbt::LoadError::BadVersion);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Durability: delta segments, compaction, eviction
// ---------------------------------------------------------------------

TEST(Image, DeltaAppendAndCompaction)
{
    workload::Program progA = testProgram(7);
    x86::Memory mA, mB;
    const dbt::Repository rA = capturedRepo(progA, mA);
    const dbt::Repository rB = capturedRepo(testProgram(31), mB);

    const std::string path = tempPath("image_delta.cdvmimg");
    ASSERT_TRUE(dbt::TransImage::save(path, builtImage(rA)));
    ASSERT_TRUE(dbt::TransImage::appendDelta(path, rB));

    // Loading merges base + delta and bumps the generation.
    dbt::TransImage merged;
    ASSERT_EQ(dbt::TransImage::load(path, merged),
              dbt::LoadError::None);
    EXPECT_EQ(merged.deltaSegments(), 1u);
    EXPECT_FALSE(merged.isMapped()); // compacted in memory
    EXPECT_EQ(merged.recordCount(),
              rA.entries.size() + rB.entries.size());
    EXPECT_EQ(merged.header().generation, 2u);

    // Compaction at save: rewrite, then a clean zero-copy mapping.
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{
        0, merged.header().generation});
    b.add(merged);
    ASSERT_TRUE(dbt::TransImage::save(path, b.build()));
    dbt::TransImage compact;
    ASSERT_EQ(dbt::TransImage::load(path, compact),
              dbt::LoadError::None);
    EXPECT_EQ(compact.deltaSegments(), 0u);
    EXPECT_EQ(compact.recordCount(), merged.recordCount());
#ifdef __unix__
    EXPECT_TRUE(compact.isMapped());
#endif

    // A truncated delta tail is typed, not parsed.
    ASSERT_TRUE(dbt::TransImage::appendDelta(path, rB));
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        const std::streamoff full = in.tellg();
        std::vector<char> bytes(static_cast<std::size_t>(full) - 9);
        in.seekg(0);
        in.read(bytes.data(), static_cast<std::streamoff>(bytes.size()));
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        outf.write(bytes.data(),
                   static_cast<std::streamoff>(bytes.size()));
    }
    dbt::TransImage cut;
    EXPECT_EQ(dbt::TransImage::load(path, cut),
              dbt::LoadError::Truncated);

    // appendDelta refuses non-image targets.
    const std::string v1path = tempPath("image_delta_v1.cdvm");
    ASSERT_TRUE(dbt::saveFile(v1path, rA));
    EXPECT_FALSE(dbt::TransImage::appendDelta(v1path, rB));
    EXPECT_FALSE(dbt::TransImage::appendDelta(
        tempPath("image_delta_missing.cdvmimg"), rB));
    std::remove(path.c_str());
    std::remove(v1path.c_str());
}

TEST(Image, EvictionByBudgetKeepsHotPrefix)
{
    workload::Program prog = testProgram();
    x86::Memory pmem;
    prog.loadInto(pmem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(pmem, cfgSoft());
    vm.run(cpu, 10'000'000);
    // Hottest-first capture so the ranking is meaningful.
    const dbt::Repository repo = vm.captureWarmStart();
    ASSERT_GT(repo.entries.size(), 4u);

    const std::vector<u8> full = builtImage(repo);
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{full.size() / 2, 1});
    b.add(repo);
    const std::vector<u8> small = b.build();
    ASSERT_GT(b.evicted(), 0u);
    ASSERT_LT(small.size(), full.size());
    EXPECT_LE(small.size(), full.size() / 2);

    dbt::TransImage img = adopted(small);
    EXPECT_EQ(img.header().evicted, b.evicted());
    EXPECT_EQ(img.recordCount(),
              repo.entries.size() - b.evicted());

    // The kept set is the hottest prefix of the ranking, and the
    // survivors still install (chains to evicted records dropped).
    for (std::size_t i = 0; i < img.recordCount(); ++i)
        EXPECT_EQ(img.record(i).hdr->entryPc, repo.entries[i].entryPc)
            << i;
    InstallTarget t(prog);
    const engine::WarmStartReport rep =
        engine::warmStartInstall(img, t.mem, t.ccm, t.prof);
    EXPECT_EQ(rep.installed, img.recordCount());

    // No budget pressure: nothing evicted.
    dbt::ImageBuilder loose(
        dbt::ImageBuilder::Options{2 * full.size(), 1});
    loose.add(repo);
    loose.build();
    EXPECT_EQ(loose.evicted(), 0u);
}

// ---------------------------------------------------------------------
// Sharing: single writer, concurrent readers (TSan targets)
// ---------------------------------------------------------------------

TEST(ImageConcurrency, ManyReadersOneWriterAppend)
{
    workload::Program prog = testProgram(11);
    x86::Memory m1, m2;
    const dbt::Repository base = capturedRepo(prog, m1);
    const dbt::Repository delta = capturedRepo(testProgram(31), m2);

    dbt::ImageStore store;
    store.publish(std::make_shared<const dbt::TransImage>(
        adopted(builtImage(base))));

    constexpr unsigned kReaders = 4;
    constexpr unsigned kInstallsPerReader = 6;
    constexpr unsigned kAppends = 5;
    std::atomic<unsigned> installs{0};
    std::atomic<bool> failed{false};

    std::vector<std::thread> readers;
    for (unsigned r = 0; r < kReaders; ++r) {
        readers.emplace_back([&] {
            for (unsigned i = 0; i < kInstallsPerReader; ++i) {
                // Hold the generation across the whole install; the
                // writer may publish newer ones meanwhile.
                std::shared_ptr<const dbt::TransImage> img =
                    store.acquire();
                if (!img) {
                    failed = true;
                    return;
                }
                InstallTarget t(prog);
                const engine::WarmStartReport rep =
                    engine::warmStartInstall(*img, t.mem, t.ccm,
                                             t.prof);
                if (rep.installed < base.entries.size() ||
                    rep.bodyCopies != 0) {
                    failed = true;
                    return;
                }
                installs.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::thread writer([&] {
        for (unsigned i = 0; i < kAppends; ++i) {
            if (store.append(delta) != dbt::LoadError::None)
                failed = true;
        }
    });
    for (std::thread &t : readers)
        t.join();
    writer.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(installs.load(), kReaders * kInstallsPerReader);
    EXPECT_EQ(store.generation(), 1u + kAppends);

    // The final generation holds both contexts' records, deduped.
    std::shared_ptr<const dbt::TransImage> fin = store.acquire();
    ASSERT_NE(fin, nullptr);
    EXPECT_EQ(fin->recordCount(),
              base.entries.size() + delta.entries.size());
}

TEST(ImageConcurrency, CompactionNeverInvalidatesHeldGenerations)
{
    workload::Program prog = testProgram(11);
    x86::Memory m1, m2;
    const dbt::Repository base = capturedRepo(prog, m1);
    const dbt::Repository delta = capturedRepo(testProgram(31), m2);

    dbt::ImageStore store;
    store.publish(std::make_shared<const dbt::TransImage>(
        adopted(builtImage(base))));

    std::atomic<bool> writerDone{false};
    std::atomic<bool> failed{false};

    std::vector<std::thread> readers;
    for (unsigned r = 0; r < 4; ++r) {
        readers.emplace_back([&] {
            // Pin the first generation and keep reading it while the
            // writer compacts replacements underneath.
            std::shared_ptr<const dbt::TransImage> pinned =
                store.acquire();
            std::vector<Addr> want;
            for (std::size_t i = 0; i < pinned->recordCount(); ++i)
                want.push_back(pinned->record(i).hdr->entryPc);
            do {
                for (std::size_t i = 0; i < pinned->recordCount();
                     ++i) {
                    const dbt::TransImage::RecordView v =
                        pinned->record(i);
                    if (v.hdr->entryPc != want[i] || v.uops.empty()) {
                        failed = true;
                        return;
                    }
                }
            } while (!writerDone.load(std::memory_order_acquire));
        });
    }
    std::thread writer([&] {
        for (unsigned i = 0; i < 8; ++i) {
            if (store.append(delta) != dbt::LoadError::None)
                failed = true;
        }
        writerDone.store(true, std::memory_order_release);
    });
    for (std::thread &t : readers)
        t.join();
    writer.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(store.generation(), 9u);
}

// ---------------------------------------------------------------------
// Fleet: 256 contexts booting from ONE shared image
// ---------------------------------------------------------------------

TEST(ImageFleet, SharedImageBootStormRetireIdentical)
{
    fleet::FleetConfig cfg;
    cfg.contexts = 256;
    cfg.workloads = 2;
    cfg.fleetSeed = 3;
    cfg.targetInsns = 40'000;
    cfg.milestoneInsns = 40'000;
    cfg.quantumInsns = 10'000;
    {
        workload::ProgramParams p;
        p.numFuncs = 5;
        p.blocksPerFunc = 3;
        p.insnsPerBlock = 8;
        p.mainIterations = 2;
        cfg.workloadParams = p;
    }

    fleet::FleetServer cold(cfg);
    const fleet::FleetResult cr = cold.run();
    ASSERT_EQ(cr.completed, cfg.contexts);
    ASSERT_EQ(cr.reachedMilestone, cfg.contexts);

    // Prime every class, merge the captures into ONE shared image.
    const engine::EngineConfig tcfg =
        fleet::tenantEngineConfig(cfg.engineCfg);
    dbt::ImageBuilder b;
    std::vector<workload::Program> progs;
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        workload::ProgramParams p = cfg.workloadParams;
        p.seed = fleet::deriveSeed(cfg.fleetSeed, w);
        progs.push_back(workload::generateProgram(p));
        x86::Memory mem;
        progs.back().loadInto(mem);
        vmm::Vmm vm(mem, tcfg);
        runToTarget(vm, progs.back(), 2 * cfg.targetInsns);
        b.add(vm.captureWarmStart());
    }
    const std::vector<u8> blob = b.build();
    auto shared =
        std::make_shared<const dbt::TransImage>(adopted(blob));
    cfg.warmImage = shared;

    fleet::FleetServer warm(cfg);
    const fleet::FleetResult wr = warm.run();
    ASSERT_EQ(wr.completed, cfg.contexts);
    ASSERT_EQ(wr.reachedMilestone, cfg.contexts);

    // Boot-storm win: every context installed zero-copy from the one
    // image, and warm p99 startup beats cold strictly.
    for (const fleet::ContextResult &c : wr.contexts) {
        EXPECT_GT(c.warmInstalled, 0u) << c.id;
        EXPECT_EQ(c.warmBodyCopies, 0u) << c.id;
        EXPECT_TRUE(c.ok) << c.id;
    }
    EXPECT_GT(wr.p99TimeToMilestone, 0.0);
    EXPECT_LT(wr.p99TimeToMilestone, cr.p99TimeToMilestone);

    // Retire-identical to per-context PRIVATE loads: a solo Vmm per
    // class adopts its own private copy of the same bytes and must
    // emulate exactly what every fleet context of that class did.
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        engine::SharedServices svc;
        svc.warmImage =
            std::make_shared<const dbt::TransImage>(adopted(blob));
        x86::Memory mem;
        progs[w].loadInto(mem);
        vmm::Vmm vm(mem, tcfg, svc);
        runToTarget(vm, progs[w], cfg.targetInsns);
        const vmm::VmmStats &st = vm.stats();
        for (const fleet::ContextResult &c : wr.contexts) {
            if (c.workload != w)
                continue;
            EXPECT_EQ(c.retired, st.totalRetired()) << c.id;
            EXPECT_EQ(c.warmInstalled, st.warmInstalled) << c.id;
            EXPECT_EQ(c.warmInvalidated, st.warmInvalidated) << c.id;
            EXPECT_EQ(c.warmRelocations, st.warmRelocations) << c.id;
            EXPECT_EQ(c.bbtTranslations, st.bbtTranslations) << c.id;
            EXPECT_EQ(c.sbtTranslations, st.sbtTranslations) << c.id;
        }
    }
}

} // namespace
} // namespace cdvm
