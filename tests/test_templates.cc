/**
 * @file
 * Template cold-tier tests (dbt/templates).
 *
 * Three layers of assurance that the IR-less template tier can never
 * diverge from the software BBT it replaces:
 *
 *   1. Rule-table lint: every learned rule is swept across its
 *      substitutable dimensions (register choices including the
 *      AH-family high classes, immediate magnitudes crossing the
 *      16-byte "complex" encoding threshold, displacement signs,
 *      scales, condition codes, targets and instruction lengths) and
 *      the specialized micro-ops must match the cracker bit for bit,
 *      deterministically.
 *   2. Interpreter cross-check: specialized micro-ops executed by the
 *      UopExecutor must reproduce the reference interpreter's
 *      architected state on the same sweeps.
 *   3. Translator behaviour: per-block fallback, provenance tagging
 *      and the coverage ablation knob.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

#include "common/random.hh"
#include "dbt/templates.hh"
#include "uops/crack.hh"
#include "uops/exec.hh"
#include "x86/form.hh"

namespace cdvm
{
namespace
{

using dbt::TemplateRule;
using dbt::TemplateRuleTable;
using uops::UopExecutor;
using uops::UState;
using x86::Cond;
using x86::CpuState;
using x86::FormKey;
using x86::Insn;
using x86::MemRef;
using x86::Memory;
using x86::Op;
using x86::Operand;
using x86::Reg;

/** Concrete values for every substitutable dimension of a form. */
struct SweepVals
{
    Reg dstReg = x86::EAX;
    Reg srcReg = x86::EDX;
    Reg memBase = x86::EBX;
    Reg memIndex = x86::ESI;
    u8 scale = 2;
    i32 disp = 0x30;
    i64 srcImm = 0x11;
    i64 src2Imm = 0x22;
    unsigned cond = 4;
    Addr target = 0x5000;
    Addr pc = 0x4000;
    u8 length = 3;
};

/** Rebuild an operand of the given 4-bit shape from concrete values. */
Operand
operandFromShape(unsigned nib, Reg reg, i64 imm, const SweepVals &v)
{
    switch (static_cast<Operand::Kind>(nib & 3)) {
      case Operand::Kind::None:
        return Operand::none();
      case Operand::Kind::Reg:
        return Operand::makeReg(reg);
      case Operand::Kind::Mem: {
        MemRef m;
        m.base = (nib & 4) ? v.memBase : x86::REG_NONE;
        m.index = (nib & 8) ? v.memIndex : x86::REG_NONE;
        m.scale = (nib & 8) ? v.scale : 1;
        m.disp = v.disp;
        return Operand::makeMem(m);
      }
      default:
        return Operand::makeImm(imm);
    }
}

/** Reconstruct an instruction of the rule's form from sweep values. */
Insn
buildFromKey(FormKey key, const SweepVals &v)
{
    Insn in;
    in.op = static_cast<Op>(key & 0xff);
    unsigned szl = (key >> 8) & 3;
    in.opSize = szl == 0 ? 1 : szl == 1 ? 2 : 4;
    in.pc = v.pc;
    in.length = v.length;
    in.cond = static_cast<Cond>(v.cond);
    in.target = v.target;
    in.dst = operandFromShape((key >> 10) & 0xf, v.dstReg, v.srcImm, v);
    in.src = operandFromShape((key >> 14) & 0xf, v.srcReg, v.srcImm, v);
    in.src2 =
        operandFromShape((key >> 18) & 0xf, v.srcReg, v.src2Imm, v);
    return in;
}

/** Register candidates of one shape class (lo = EAX..EBX, hi = rest). */
std::vector<Reg>
regClass(unsigned nib)
{
    if (nib & 4)
        return {x86::ESP, x86::EBP, x86::ESI, x86::EDI};
    return {x86::EAX, x86::ECX, x86::EDX, x86::EBX};
}

/**
 * One-at-a-time sweep over every substitutable dimension of a rule's
 * form. Variants whose form key no longer matches the rule (register
 * aliasing, `pop esp`) are dropped — those are different forms with
 * their own handling. `small_values` restricts displacements and
 * immediates to execution-friendly magnitudes for the interpreter
 * cross-check; the structural lint uses the full range.
 */
std::vector<Insn>
sweepInsns(const TemplateRule &r, bool small_values)
{
    FormKey key = r.key;
    Op op = static_cast<Op>(key & 0xff);
    unsigned ds = (key >> 10) & 0xf;
    unsigned ss = (key >> 14) & 0xf;
    unsigned s2s = (key >> 18) & 0xf;
    bool popEsp = key & (1u << 23);

    SweepVals base;
    if ((ds & 3) == 1)
        base.dstReg = regClass(ds)[0];
    if (popEsp)
        base.dstReg = x86::ESP;
    if ((ss & 3) == 1)
        base.srcReg = regClass(ss).back();

    std::vector<SweepVals> vals;
    vals.push_back(base);
    auto vary = [&](auto &&set) {
        SweepVals v = base;
        set(v);
        vals.push_back(v);
    };

    if ((ds & 3) == 1 && !popEsp)
        for (Reg r2 : regClass(ds))
            vary([&](SweepVals &v) { v.dstReg = r2; });
    if ((ss & 3) == 1)
        for (Reg r2 : regClass(ss))
            vary([&](SweepVals &v) { v.srcReg = r2; });

    bool hasMem = (ds & 3) == 2 || (ss & 3) == 2;
    unsigned memNib = (ds & 3) == 2 ? ds : ss;
    if (hasMem) {
        if (memNib & 4)
            for (Reg b : {x86::EAX, x86::EBX, x86::EBP, x86::EDI})
                vary([&](SweepVals &v) { v.memBase = b; });
        if (memNib & 8) {
            for (Reg ix : {x86::ECX, x86::EDX, x86::ESI, x86::EDI})
                vary([&](SweepVals &v) { v.memIndex = ix; });
            for (u8 sc : {1, 2, 4, 8})
                vary([&](SweepVals &v) { v.scale = sc; });
        }
        static const i32 disps_full[] = {0, 1, -1, 0x7fff, -0x8000,
                                         0x1234567};
        static const i32 disps_small[] = {0, 4, -8, 0x7f0};
        for (i32 d : small_values ? std::span<const i32>(disps_small)
                                  : std::span<const i32>(disps_full))
            vary([&](SweepVals &v) { v.disp = d; });
    }

    bool hasImm = (ss & 3) == 3 || (s2s & 3) == 3;
    if (hasImm) {
        // The large magnitudes force long Limm encodings, crossing the
        // 16-byte complex threshold for forms near the boundary.
        static const i64 imms_full[] = {0,    1,          -1,
                                        127,  -128,       0x7fffffff,
                                        -0x7fffffffll - 1};
        static const i64 imms_small[] = {0, 1, -1, 100, 0x12345};
        for (i64 i : small_values ? std::span<const i64>(imms_small)
                                  : std::span<const i64>(imms_full))
            vary([&](SweepVals &v) {
                ((ss & 3) == 3 ? v.srcImm : v.src2Imm) = i;
            });
    }

    if (op == Op::Jcc || op == Op::Setcc)
        for (unsigned c = 0; c < 16; ++c)
            vary([&](SweepVals &v) { v.cond = c; });
    if (op == Op::Jcc || op == Op::Jmp || op == Op::Call)
        vary([&](SweepVals &v) { v.target = 0x123450; });
    for (u8 len : {2, 5, 13})
        vary([&](SweepVals &v) { v.length = len; });
    vary([&](SweepVals &v) { v.pc = 0x9eb0; });

    std::vector<Insn> out;
    for (const SweepVals &v : vals) {
        Insn in = buildFromKey(key, v);
        if (x86::formKey(in) == key)
            out.push_back(in);
    }
    return out;
}

::testing::AssertionResult
sameUops(const uops::UopVec &a, const uops::UopVec &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "uop count " << a.size() << " vs " << b.size();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const uops::Uop &x = a[i];
        const uops::Uop &y = b[i];
        if (x.op != y.op || x.dst != y.dst || x.src1 != y.src1 ||
            x.src2 != y.src2 || x.size != y.size ||
            x.scale != y.scale || x.cond != y.cond ||
            x.hasImm != y.hasImm || x.imm != y.imm ||
            x.writeFlags != y.writeFlags ||
            x.fusedHead != y.fusedHead || x.target != y.target ||
            x.x86pc != y.x86pc)
            return ::testing::AssertionFailure()
                   << "uop " << i << ": " << x.toString() << " vs "
                   << y.toString();
    }
    return ::testing::AssertionSuccess();
}

TEST(TemplateRules, TableIsSubstantial)
{
    const TemplateRuleTable &t = TemplateRuleTable::instance();
    EXPECT_GT(t.numRules(), 1000u);
    // Every rule is reachable through lookup at full coverage...
    for (std::size_t i = 0; i < t.numRules(); ++i)
        EXPECT_EQ(t.find(t.ruleAt(i).key), &t.ruleAt(i));
    // ...and the ablation knob hides the tail of the enumeration.
    EXPECT_EQ(t.find(t.ruleAt(t.numRules() - 1).key, 0), nullptr);
    EXPECT_NE(t.find(t.ruleAt(0).key, 1), nullptr);
}

TEST(TemplateRules, LintEveryRuleMatchesCrackerOnSweeps)
{
    const TemplateRuleTable &t = TemplateRuleTable::instance();
    u64 checked = 0;
    for (std::size_t i = 0; i < t.numRules(); ++i) {
        const TemplateRule &r = t.ruleAt(i);
        for (const Insn &in : sweepInsns(r, false)) {
            uops::CrackResult cr = uops::crack(in);
            uops::UopVec a, b;
            unsigned bytes = 0;
            bool ca = TemplateRuleTable::specialize(r, in, a, &bytes);
            bool cb = TemplateRuleTable::specialize(r, in, b);
            ASSERT_TRUE(sameUops(a, b))
                << "non-deterministic specialization: " << in.toString();
            EXPECT_EQ(ca, cb) << in.toString();
            ASSERT_TRUE(sameUops(a, cr.uops))
                << "rule " << i << " diverges from crack: "
                << in.toString();
            EXPECT_EQ(ca, cr.complex)
                << "complex flag diverges: " << in.toString();
            // The baked fixed-size + patched-uop accounting must agree
            // with a full encode (TemplateTranslator sums it per block
            // into Translation::codeBytes).
            EXPECT_EQ(bytes, uops::encodedBytes(a))
                << "encoded-size accounting diverges: " << in.toString();
            ++checked;
        }
    }
    // The sweeps must actually exercise the table, not filter it away.
    EXPECT_GT(checked, 10 * t.numRules());
}

/**
 * Execute one instruction via the interpreter and via its specialized
 * template micro-ops from the same initial state; compare everything
 * (the test_crack_exec protocol, with specialize() as the producer).
 */
void
checkSemantics(const TemplateRule &r, const Insn &in,
               const CpuState &start, Memory &mem_template,
               const std::string &label)
{
    Memory mem_a = mem_template;
    CpuState cpu_a = start;
    x86::Interpreter interp(cpu_a, mem_a);
    x86::StepResult sr = interp.execute(in);

    uops::UopVec uv;
    TemplateRuleTable::specialize(r, in, uv);
    Memory mem_b = mem_template;
    UState ust;
    ust.loadArch(start);
    UopExecutor exe(ust, mem_b);
    uops::BlockResult br = exe.run(uv, in.nextPc());
    CpuState cpu_b = start;
    ust.storeArch(cpu_b);
    cpu_b.eip = static_cast<u32>(br.nextPc);

    if (sr.exit == x86::Exit::Trap) {
        EXPECT_EQ(static_cast<int>(br.exit),
                  static_cast<int>(uops::BlockExit::Fault))
            << label;
        return;
    }
    if (sr.exit == x86::Exit::Halted) {
        EXPECT_EQ(static_cast<int>(br.exit),
                  static_cast<int>(uops::BlockExit::VmExit))
            << label;
        return;
    }

    for (unsigned reg = 0; reg < x86::NUM_REGS; ++reg)
        EXPECT_EQ(cpu_a.regs[reg], cpu_b.regs[reg])
            << label << " reg "
            << x86::regName(static_cast<Reg>(reg))
            << "\n  insn: " << in.toString();
    EXPECT_EQ(cpu_a.eflags & x86::FLAG_ALL,
              cpu_b.eflags & x86::FLAG_ALL)
        << label << "\n  insn: " << in.toString();
    EXPECT_EQ(cpu_a.eip, cpu_b.eip)
        << label << "\n  insn: " << in.toString();

    std::vector<u8> da = mem_a.readBlock(0x00800000, 8192);
    std::vector<u8> db = mem_b.readBlock(0x00800000, 8192);
    EXPECT_EQ(da, db) << label << "\n  insn: " << in.toString();
    std::vector<u8> sa = mem_a.readBlock(0x7ffeff00, 0x200);
    std::vector<u8> sb = mem_b.readBlock(0x7ffeff00, 0x200);
    EXPECT_EQ(sa, sb) << label << "\n  insn: " << in.toString();
}

TEST(TemplateRules, InterpreterCrossCheckOnSweeps)
{
    const TemplateRuleTable &t = TemplateRuleTable::instance();
    Pcg32 rng(2026, 8);
    Memory mem_template;
    for (Addr a = 0x00800000; a < 0x00800000 + 4096; a += 4)
        mem_template.write32(a, rng.next());

    for (std::size_t i = 0; i < t.numRules(); ++i) {
        const TemplateRule &r = t.ruleAt(i);
        Op op = static_cast<Op>(r.key & 0xff);
        // Interp-vs-uop equivalence of the serializing forms is not a
        // template-tier property; the structural lint already pins
        // them to the cracker's exact micro-ops.
        if (op == Op::Cpuid || op == Op::Rdtsc || op == Op::Int3)
            continue;
        for (const Insn &in : sweepInsns(r, true)) {
            CpuState start;
            for (unsigned reg2 = 0; reg2 < x86::NUM_REGS; ++reg2)
                start.regs[reg2] = rng.next();
            start.regs[x86::ESP] = 0x7fff0000 - rng.below(64) * 4;
            start.eflags = 0x202 | (rng.next() & x86::FLAG_ALL);
            // Constrain any memory operand into the seeded window.
            const Operand *memOp = in.dst.isMem()   ? &in.dst
                                   : in.src.isMem() ? &in.src
                                                    : nullptr;
            if (memOp) {
                if (memOp->mem.hasBase() &&
                    memOp->mem.base != x86::ESP)
                    start.regs[memOp->mem.base] = 0x00800000 + 0x800;
                if (memOp->mem.hasIndex())
                    start.regs[memOp->mem.index] = rng.below(32);
                if ((memOp->mem.hasBase() &&
                     memOp->mem.base == x86::ESP) ||
                    (memOp->mem.hasIndex() &&
                     memOp->mem.index == x86::ESP))
                    continue; // stack-relative: outside the window
            }
            Memory mem = mem_template;
            if (in.isRet())
                mem.write32(start.regs[x86::ESP], 0x2222);
            if (in.op == Op::JmpInd || in.op == Op::CallInd) {
                if (in.src.isReg())
                    start.regs[in.src.reg] = 0x1400;
                else if (in.src.isMem())
                    mem.write32(0x00800000 + 0x800 +
                                    static_cast<u32>(in.src.mem.disp),
                                0x1400);
            }
            checkSemantics(r, in, start, mem,
                           "rule " + std::to_string(i));
        }
    }
}

TEST(TemplateTranslator, ProvenanceFallbackAndCoverage)
{
    x86::Assembler as(0x1000);
    as.aluRI(Op::Add, x86::EAX, 5);
    as.movRM(x86::ECX, MemRef{x86::EBX, x86::REG_NONE, 1, 8});
    as.push(x86::EAX);
    as.pop(x86::EDX);
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    // Full coverage: the block comes from templates.
    {
        x86::Memory mem;
        prog.loadInto(mem);
        dbt::TemplateTranslator tx(mem, 32, 100);
        auto t = tx.translate(0x1000);
        ASSERT_TRUE(t);
        EXPECT_EQ(static_cast<int>(t->provenance),
                  static_cast<int>(dbt::TransProvenance::TmplBbt));
        EXPECT_GT(tx.templatedBlocks(), 0u);
        EXPECT_EQ(tx.fallbackBlocks(), 0u);

        // The templated block must equal the software BBT's, bit for
        // bit, including boundaries.
        dbt::BasicBlockTranslator sw(mem, 32);
        auto ref = sw.translate(0x1000);
        ASSERT_TRUE(ref);
        EXPECT_TRUE(sameUops(t->uops, ref->uops));
        EXPECT_EQ(t->numX86Insns, ref->numX86Insns);
        EXPECT_EQ(t->fallthroughPc, ref->fallthroughPc);
        EXPECT_EQ(t->containsComplex, ref->containsComplex);
    }

    // Zero coverage: every rule hidden, whole block falls back to the
    // embedded software translator (provenance says so).
    {
        x86::Memory mem;
        prog.loadInto(mem);
        dbt::TemplateTranslator tx(mem, 32, 0);
        auto t = tx.translate(0x1000);
        ASSERT_TRUE(t);
        EXPECT_EQ(static_cast<int>(t->provenance),
                  static_cast<int>(dbt::TransProvenance::SwBbt));
        EXPECT_EQ(tx.templatedBlocks(), 0u);
        EXPECT_GT(tx.fallbackBlocks(), 0u);
    }
}

TEST(TemplateVmm, SmcParityWithSoftwareBbt)
{
    // The VMM does not invalidate translations on guest code writes;
    // a self-modifying program therefore executes whatever mix of
    // stale translated code and fresh translations the block shapes
    // imply. Both tiers form identical blocks, so their outcomes must
    // be identical -- compared against each other, not the
    // interpreter (which always sees the rewritten bytes).
    x86::Assembler as(0x1000);
    as.movRI(x86::EBX, 0x100d); // imm32 of the movRI(EAX) below
    as.movRI(x86::ECX, 0x2222);
    as.movMR(MemRef{x86::EBX, x86::REG_NONE, 1, 0}, x86::ECX);
    as.movRI(x86::EAX, 0x1111); // at 0x100c, patched in flight
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    vmm::VmmConfig cfg_soft = engine::EngineConfig::vmSoft();
    vmm::VmmConfig cfg_tmpl = engine::EngineConfig::vmSoftTmpl();

    x86::Memory mem_a, mem_b;
    test::RunResult a = test::runVmm(prog, mem_a, cfg_soft);
    test::RunResult b = test::runVmm(prog, mem_b, cfg_tmpl);
    ASSERT_EQ(static_cast<int>(a.exit),
              static_cast<int>(x86::Exit::Halted));
    EXPECT_TRUE(test::sameOutcome(prog, a, mem_a, b, mem_b));
    EXPECT_EQ(a.retired, b.retired);
}

TEST(TemplateVmm, RetiresIdenticallyToInterpreter)
{
    workload::ProgramParams pp;
    pp.seed = 909;
    pp.mainIterations = 30;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory ref_mem;
    test::RunResult ref = test::runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted));

    vmm::VmmConfig cfg = engine::EngineConfig::vmSoftTmpl();
    cfg.hotThreshold = 30;
    x86::Memory mem;
    vmm::VmmStats stats;
    test::RunResult got = test::runVmm(prog, mem, cfg, &stats);
    EXPECT_TRUE(test::sameOutcome(prog, ref, ref_mem, got, mem));
    EXPECT_GT(stats.bbtTranslations, 0u);
}

} // namespace
} // namespace cdvm
