/**
 * @file
 * The persistent translation repository (dbt/persist) and the engine's
 * warm-start path.
 *
 * Format robustness: a round-tripped repository is equal field by
 * field; bad magic, version mismatches, truncation at any point, and
 * arbitrary bit flips are all rejected (never crash, never parse).
 *
 * Staleness: entries whose guest code changed since capture are
 * invalidated at load time and the VM silently falls back to cold
 * translation for them.
 *
 * The acceptance property: a warm-started VM retires bit-identical
 * architected state (registers, flags, memory image) to a cold run of
 * the same program.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "dbt/persist.hh"
#include "helpers.hh"

namespace cdvm
{
namespace
{

using test::RunResult;
using test::runInterp;
using test::runVmm;
using test::sameOutcome;

vmm::VmmConfig
cfgSoft()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.hotThreshold = 30; // low threshold so SBT entries exist too
    return c;
}

workload::Program
testProgram(u64 seed = 7)
{
    workload::ProgramParams pp;
    pp.seed = seed;
    return workload::generateProgram(pp);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Run a program cold and capture its translation map. */
dbt::Repository
capturedRepo(const workload::Program &prog, x86::Memory &mem)
{
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(mem, cfgSoft());
    vm.run(cpu, 10'000'000);
    return dbt::capture(vm.translations(), mem);
}

// ---------------------------------------------------------------------
// Format round trip and rejection
// ---------------------------------------------------------------------

TEST(Persist, RoundTripEquality)
{
    x86::Memory mem;
    dbt::Repository repo = capturedRepo(testProgram(), mem);
    ASSERT_FALSE(repo.entries.empty());
    ASSERT_FALSE(repo.pageHashes.empty());

    const std::vector<u8> bytes = dbt::serialize(repo);
    dbt::Repository back;
    ASSERT_EQ(dbt::deserialize(bytes, back), dbt::LoadError::None);

    ASSERT_EQ(back.pageHashes.size(), repo.pageHashes.size());
    for (std::size_t i = 0; i < repo.pageHashes.size(); ++i)
        EXPECT_EQ(back.pageHashes[i], repo.pageHashes[i]) << i;

    ASSERT_EQ(back.entries.size(), repo.entries.size());
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        const dbt::SavedTranslation &a = repo.entries[i];
        const dbt::SavedTranslation &b = back.entries[i];
        EXPECT_EQ(b.kind, a.kind) << i;
        EXPECT_EQ(b.entryPc, a.entryPc) << i;
        EXPECT_EQ(b.numX86Insns, a.numX86Insns) << i;
        EXPECT_EQ(b.x86Bytes, a.x86Bytes) << i;
        EXPECT_EQ(b.fallthroughPc, a.fallthroughPc) << i;
        EXPECT_EQ(b.containsComplex, a.containsComplex) << i;
        EXPECT_EQ(b.endsInCti, a.endsInCti) << i;
        EXPECT_EQ(b.endsInCondBranch, a.endsInCondBranch) << i;
        EXPECT_EQ(b.condBranchTarget, a.condBranchTarget) << i;
        EXPECT_EQ(b.condBranchPc, a.condBranchPc) << i;
        EXPECT_EQ(b.execCount, a.execCount) << i;
        EXPECT_EQ(b.takenCount, a.takenCount) << i;
        EXPECT_EQ(b.notTakenCount, a.notTakenCount) << i;
        for (unsigned c = 0; c < 2; ++c) {
            EXPECT_EQ(b.chains[c].targetPc, a.chains[c].targetPc) << i;
            EXPECT_EQ(b.chains[c].record, a.chains[c].record) << i;
        }
        EXPECT_EQ(b.x86pcs, a.x86pcs) << i;
        EXPECT_EQ(b.uopPcs, a.uopPcs) << i;
        EXPECT_EQ(b.body, a.body) << i;
    }

    ASSERT_EQ(back.branchProfile.size(), repo.branchProfile.size());

    // Every round-tripped entry materializes back into executable
    // micro-ops with the precise-state tags re-attached.
    for (const dbt::SavedTranslation &e : back.entries) {
        std::unique_ptr<dbt::Translation> t = e.materialize();
        ASSERT_NE(t, nullptr);
        ASSERT_EQ(t->uops.size(), e.uopPcs.size());
        for (std::size_t i = 0; i < t->uops.size(); ++i)
            EXPECT_EQ(t->uops[i].x86pc, e.uopPcs[i]);
    }
}

TEST(Persist, BadMagicRejected)
{
    x86::Memory mem;
    std::vector<u8> bytes =
        dbt::serialize(capturedRepo(testProgram(), mem));
    bytes[0] ^= 0xFF;
    dbt::Repository out;
    EXPECT_EQ(dbt::deserialize(bytes, out), dbt::LoadError::BadMagic);
}

TEST(Persist, VersionMismatchRejected)
{
    x86::Memory mem;
    std::vector<u8> bytes =
        dbt::serialize(capturedRepo(testProgram(), mem));
    bytes[8] = static_cast<u8>(dbt::REPO_VERSION + 1); // version field
    dbt::Repository out;
    EXPECT_EQ(dbt::deserialize(bytes, out),
              dbt::LoadError::BadVersion);
}

TEST(Persist, TruncationRejectedAtEveryLength)
{
    x86::Memory mem;
    const std::vector<u8> bytes =
        dbt::serialize(capturedRepo(testProgram(), mem));
    ASSERT_GT(bytes.size(), 64u);

    // Every proper prefix must be rejected -- never parsed, never a
    // crash. Step keeps the sweep fast on large repositories.
    const std::size_t step = std::max<std::size_t>(bytes.size() / 97, 1);
    for (std::size_t len = 0; len < bytes.size(); len += step) {
        dbt::Repository out;
        EXPECT_NE(dbt::deserialize({bytes.data(), len}, out),
                  dbt::LoadError::None)
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(Persist, BitFlipRejectedEverywhere)
{
    x86::Memory mem;
    const std::vector<u8> orig =
        dbt::serialize(capturedRepo(testProgram(), mem));

    const std::size_t step = std::max<std::size_t>(orig.size() / 61, 1);
    for (std::size_t pos = 0; pos < orig.size(); pos += step) {
        std::vector<u8> bytes = orig;
        bytes[pos] ^= 0x40;
        dbt::Repository out;
        EXPECT_NE(dbt::deserialize(bytes, out), dbt::LoadError::None)
            << "bit flip at byte " << pos << " parsed";
    }

    // A flip that leaves the structure parseable (a page-hash byte)
    // must be caught by the whole-file checksum specifically.
    std::vector<u8> bytes = orig;
    bytes[16 + 4 + 8] ^= 0x01; // first page hash, low byte
    dbt::Repository out;
    EXPECT_EQ(dbt::deserialize(bytes, out), dbt::LoadError::Corrupt);
}

TEST(Persist, MissingFileIsIoError)
{
    dbt::Repository out;
    EXPECT_EQ(dbt::loadFile(tempPath("no_such_repo.cdvm"), out),
              dbt::LoadError::Io);
}

// ---------------------------------------------------------------------
// Staleness
// ---------------------------------------------------------------------

TEST(Persist, StaleGuestCodeInvalidatesTouchedEntries)
{
    workload::Program prog = testProgram();
    x86::Memory mem;
    dbt::Repository repo = capturedRepo(prog, mem);
    ASSERT_FALSE(repo.entries.empty());

    // Unchanged memory: nothing is stale.
    EXPECT_TRUE(dbt::staleEntries(repo, mem).empty());

    // Patch one code byte: every entry touching that page goes stale,
    // and at least the entry covering the patched pc does.
    const Addr patched = repo.entries.front().entryPc;
    mem.write8(patched, mem.read8(patched) ^ 0xFF);
    auto stale = dbt::staleEntries(repo, mem);
    EXPECT_FALSE(stale.empty());
    EXPECT_TRUE(stale.count(0));

    // A fully rewritten image (all hashed pages changed) invalidates
    // every entry. (page + 1, so the earlier single-byte patch at the
    // page base is not flipped back to its original value.)
    for (const auto &[page, hash] : repo.pageHashes)
        mem.write8(page + 1, mem.read8(page + 1) ^ 0xFF);
    EXPECT_EQ(dbt::staleEntries(repo, mem).size(), repo.entries.size());
}

// ---------------------------------------------------------------------
// Warm start end to end
// ---------------------------------------------------------------------

TEST(WarmStart, DifferentialBitIdenticalToColdRun)
{
    const std::string path = tempPath("warm_diff.cdvm");
    workload::Program prog = testProgram(11);

    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);

    // Cold run, saving the repository on the way out.
    vmm::VmmConfig save_cfg = cfgSoft();
    save_cfg.warmStartSavePath = path;
    x86::Memory cold_mem;
    vmm::VmmStats cold_st;
    prog.loadInto(cold_mem);
    RunResult cold;
    cold.cpu = prog.initialState();
    {
        vmm::Vmm vm(cold_mem, save_cfg);
        cold.exit = vm.run(cold.cpu, 10'000'000);
        cold.retired = cold.cpu.icount;
        cold_st = vm.stats();
        ASSERT_TRUE(vm.saveWarmStart());
    }
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, cold, cold_mem));

    // Warm run from the saved repository.
    vmm::VmmConfig load_cfg = cfgSoft();
    load_cfg.warmStartLoadPath = path;
    x86::Memory warm_mem;
    vmm::VmmStats warm_st;
    RunResult warm = runVmm(prog, warm_mem, load_cfg, &warm_st);

    // The acceptance property: bit-identical architected state.
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, warm, warm_mem));
    EXPECT_EQ(warm.retired, cold.retired);

    // The warm stats prove the repository was actually used.
    EXPECT_GT(warm_st.warmLoaded, 0u);
    EXPECT_GT(warm_st.warmInstalled, 0u);
    EXPECT_EQ(warm_st.warmInvalidated, 0u);
    EXPECT_EQ(warm_st.warmInstalled, warm_st.warmLoaded);

    // And that it saved translation work: the warm run re-translates
    // strictly fewer basic blocks than the cold run did.
    EXPECT_LT(warm_st.bbtTranslations, cold_st.bbtTranslations);

    std::remove(path.c_str());
}

TEST(WarmStart, StaleRepositoryFallsBackToColdTranslation)
{
    const std::string path = tempPath("warm_stale.cdvm");

    // Save a repository for program A, then warm-start program B --
    // different code at the same addresses. Every stale entry must be
    // rejected and the run must still be correct.
    workload::Program prog_a = testProgram(21);
    x86::Memory mem_a;
    {
        vmm::VmmConfig cfg = cfgSoft();
        prog_a.loadInto(mem_a);
        x86::CpuState cpu = prog_a.initialState();
        vmm::Vmm vm(mem_a, cfg);
        vm.run(cpu, 10'000'000);
        ASSERT_TRUE(vm.saveWarmStart(path));
    }

    workload::Program prog_b = testProgram(22);
    x86::Memory ref_mem;
    RunResult ref = runInterp(prog_b, ref_mem);

    vmm::VmmConfig load_cfg = cfgSoft();
    load_cfg.warmStartLoadPath = path;
    x86::Memory warm_mem;
    vmm::VmmStats st;
    RunResult warm = runVmm(prog_b, warm_mem, load_cfg, &st);

    EXPECT_TRUE(sameOutcome(prog_b, ref, ref_mem, warm, warm_mem));
    EXPECT_GT(st.warmLoaded, 0u);
    EXPECT_GT(st.warmInvalidated, 0u);
    EXPECT_EQ(st.warmInstalled + st.warmInvalidated, st.warmLoaded);

    std::remove(path.c_str());
}

TEST(WarmStart, MissingRepositoryRunsCold)
{
    workload::Program prog = testProgram(31);
    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);

    vmm::VmmConfig cfg = cfgSoft();
    cfg.warmStartLoadPath = tempPath("never_saved.cdvm");
    x86::Memory mem;
    vmm::VmmStats st;
    RunResult got = runVmm(prog, mem, cfg, &st);

    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem));
    EXPECT_EQ(st.warmLoaded, 0u);
    EXPECT_EQ(st.warmInstalled, 0u);
}

} // namespace
} // namespace cdvm
