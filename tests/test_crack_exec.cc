/**
 * @file
 * Cracking + micro-op executor differential tests: for random
 * instruction mixes, executing the cracked micro-ops must produce the
 * same architected state as the reference interpreter, instruction by
 * instruction.
 */

#include <functional>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "uops/exec.hh"
#include "x86/asm.hh"
#include "x86/decoder.hh"
#include "x86/interp.hh"

namespace cdvm
{
namespace
{

using uops::UopExecutor;
using uops::UState;
using x86::Assembler;
using x86::Cond;
using x86::CpuState;
using x86::Insn;
using x86::MemRef;
using x86::Memory;
using x86::Op;
using x86::Reg;

/** Random-but-valid architected state. */
CpuState
randomState(Pcg32 &rng)
{
    CpuState cpu;
    for (unsigned r = 0; r < x86::NUM_REGS; ++r)
        cpu.regs[r] = rng.next();
    cpu.regs[x86::ESP] = 0x7fff0000 - rng.below(64) * 4;
    cpu.eflags = 0x202 | (rng.next() & x86::FLAG_ALL);
    return cpu;
}

/**
 * Execute one decoded instruction both ways from the same initial
 * state and compare everything.
 */
void
checkInsn(const Insn &in, const CpuState &start, Memory &mem_template,
          const std::string &label)
{
    // Interpreter path.
    Memory mem_a = mem_template;
    CpuState cpu_a = start;
    x86::Interpreter interp(cpu_a, mem_a);
    x86::StepResult sr = interp.execute(in);

    // Cracked micro-op path.
    uops::CrackResult cr = uops::crack(in);
    Memory mem_b = mem_template;
    UState ust;
    ust.loadArch(start);
    UopExecutor exe(ust, mem_b);
    uops::BlockResult br = exe.run(cr.uops, in.nextPc());
    CpuState cpu_b = start;
    ust.storeArch(cpu_b);
    cpu_b.eip = static_cast<u32>(br.nextPc);

    if (sr.exit == x86::Exit::Trap) {
        EXPECT_EQ(static_cast<int>(br.exit),
                  static_cast<int>(uops::BlockExit::Fault))
            << label;
        return;
    }
    if (sr.exit == x86::Exit::Halted) {
        EXPECT_EQ(static_cast<int>(br.exit),
                  static_cast<int>(uops::BlockExit::VmExit))
            << label;
        return;
    }

    for (unsigned r = 0; r < x86::NUM_REGS; ++r)
        EXPECT_EQ(cpu_a.regs[r], cpu_b.regs[r])
            << label << " reg " << x86::regName(static_cast<Reg>(r))
            << "\n  insn: " << in.toString();
    EXPECT_EQ(cpu_a.eflags & x86::FLAG_ALL,
              cpu_b.eflags & x86::FLAG_ALL)
        << label << "\n  insn: " << in.toString();
    EXPECT_EQ(cpu_a.eip, cpu_b.eip)
        << label << "\n  insn: " << in.toString();

    // Memory effects: compare the data window.
    std::vector<u8> da = mem_a.readBlock(0x00800000, 8192);
    std::vector<u8> db = mem_b.readBlock(0x00800000, 8192);
    EXPECT_EQ(da, db) << label << "\n  insn: " << in.toString();
    std::vector<u8> sa = mem_a.readBlock(0x7ffeff00, 0x200);
    std::vector<u8> sb = mem_b.readBlock(0x7ffeff00, 0x200);
    EXPECT_EQ(sa, sb) << label << "\n  insn: " << in.toString();
}

/** Decode the single instruction an assembler callback emits. */
Insn
assembleOne(const std::function<void(Assembler &)> &emit)
{
    Assembler as(0x1000);
    emit(as);
    std::vector<u8> buf = as.finalize();
    buf.resize(x86::MAX_INSN_LEN + 1, 0x90);
    x86::DecodeResult dr =
        x86::decode(std::span<const u8>(buf.data(), buf.size()), 0x1000);
    EXPECT_TRUE(dr.ok) << dr.error;
    return dr.insn;
}

class CrackExecRandom : public ::testing::TestWithParam<u64>
{
};

TEST_P(CrackExecRandom, RandomInstructionMix)
{
    Pcg32 rng(GetParam(), 7);
    Memory mem_template;
    // Seed data memory with deterministic noise.
    for (Addr a = 0x00800000; a < 0x00800000 + 4096; a += 4)
        mem_template.write32(a, rng.next());

    static const Op alu_ops[] = {Op::Add, Op::Or, Op::Adc, Op::Sbb,
                                 Op::And, Op::Sub, Op::Xor, Op::Cmp};

    for (int iter = 0; iter < 400; ++iter) {
        CpuState start = randomState(rng);
        // Constrain base registers so memory operands land in the
        // seeded data window.
        start.regs[x86::EBX] = 0x00800000 + rng.below(512) * 4;
        start.regs[x86::ESI] = rng.below(200);

        MemRef m{x86::EBX, rng.chance(0.5) ? x86::ESI : x86::REG_NONE,
                 4, static_cast<i32>(rng.below(1024))};

        unsigned pick = rng.below(20);
        Insn in;
        switch (pick) {
          case 0:
            in = assembleOne([&](Assembler &a) {
                a.aluRR(alu_ops[rng.below(8)],
                        static_cast<Reg>(rng.below(8)),
                        static_cast<Reg>(rng.below(8)));
            });
            break;
          case 1:
            in = assembleOne([&](Assembler &a) {
                a.aluRM(alu_ops[rng.below(8)],
                        static_cast<Reg>(rng.below(8)), m);
            });
            break;
          case 2:
            in = assembleOne([&](Assembler &a) {
                a.aluMR(alu_ops[rng.below(8)], m,
                        static_cast<Reg>(rng.below(8)));
            });
            break;
          case 3:
            in = assembleOne([&](Assembler &a) {
                a.aluMI(alu_ops[rng.below(8)], m,
                        static_cast<i32>(rng.next()));
            });
            break;
          case 4: { // byte ALU incl. high-byte registers
            u8 row = static_cast<u8>(rng.below(8));
            u8 modrm = static_cast<u8>(0xc0 | rng.below(64));
            in = assembleOne([&](Assembler &a) {
                a.db(static_cast<u8>(row << 3)); // op r/m8, r8
                a.db(modrm);
            });
            break;
          }
          case 5:
            in = assembleOne([&](Assembler &a) {
                a.db(0x66);
                a.aluRR(alu_ops[rng.below(8)],
                        static_cast<Reg>(rng.below(8)),
                        static_cast<Reg>(rng.below(8)));
            });
            break;
          case 6:
            in = assembleOne([&](Assembler &a) {
                a.movRM(static_cast<Reg>(rng.below(8)), m);
            });
            break;
          case 7:
            in = assembleOne([&](Assembler &a) {
                a.movMR(m, static_cast<Reg>(rng.below(8)));
            });
            break;
          case 8:
            in = assembleOne([&](Assembler &a) {
                if (rng.chance(0.5))
                    a.movzxM(static_cast<Reg>(rng.below(8)), m,
                             rng.chance(0.5) ? 1 : 2);
                else
                    a.movsx(static_cast<Reg>(rng.below(8)),
                            static_cast<Reg>(rng.below(8)),
                            rng.chance(0.5) ? 1 : 2);
            });
            break;
          case 9:
            in = assembleOne([&](Assembler &a) {
                a.shiftRI(rng.chance(0.5)
                              ? (rng.chance(0.5) ? Op::Shl : Op::Shr)
                              : (rng.chance(0.5) ? Op::Sar
                                 : rng.chance(0.5) ? Op::Rol
                                                   : Op::Ror),
                          static_cast<Reg>(rng.below(8)),
                          static_cast<u8>(rng.below(40)));
            });
            break;
          case 10:
            in = assembleOne([&](Assembler &a) {
                a.shiftRCl(rng.chance(0.5) ? Op::Shl : Op::Sar,
                           static_cast<Reg>(rng.below(8)));
            });
            break;
          case 11:
            in = assembleOne([&](Assembler &a) {
                if (rng.chance(0.5))
                    a.imulRR(static_cast<Reg>(rng.below(8)),
                             static_cast<Reg>(rng.below(8)));
                else
                    a.imulRRI(static_cast<Reg>(rng.below(8)),
                              static_cast<Reg>(rng.below(8)),
                              static_cast<i32>(rng.next()));
            });
            break;
          case 12:
            in = assembleOne([&](Assembler &a) {
                switch (rng.below(4)) {
                  case 0: a.mulA(static_cast<Reg>(rng.below(8))); break;
                  case 1: a.imulA(static_cast<Reg>(rng.below(8))); break;
                  case 2: a.divA(static_cast<Reg>(rng.below(8))); break;
                  default: a.idivA(static_cast<Reg>(rng.below(8))); break;
                }
            });
            break;
          case 13:
            in = assembleOne([&](Assembler &a) {
                if (rng.chance(0.5))
                    a.push(static_cast<Reg>(rng.below(8)));
                else
                    a.pop(static_cast<Reg>(rng.below(8)));
            });
            break;
          case 14:
            in = assembleOne([&](Assembler &a) {
                switch (rng.below(4)) {
                  case 0: a.inc(static_cast<Reg>(rng.below(8))); break;
                  case 1: a.dec(static_cast<Reg>(rng.below(8))); break;
                  case 2: a.notReg(static_cast<Reg>(rng.below(8))); break;
                  default: a.negReg(static_cast<Reg>(rng.below(8))); break;
                }
            });
            break;
          case 15:
            in = assembleOne([&](Assembler &a) {
                a.setcc(static_cast<Cond>(rng.below(16)),
                        static_cast<Reg>(rng.below(8)));
            });
            break;
          case 16:
            in = assembleOne([&](Assembler &a) {
                a.xchg(static_cast<Reg>(rng.below(8)),
                       static_cast<Reg>(rng.below(8)));
            });
            break;
          case 17:
            in = assembleOne([&](Assembler &a) { a.cdq(); });
            break;
          case 18:
            in = assembleOne([&](Assembler &a) {
                a.lea(static_cast<Reg>(rng.below(8)), m);
            });
            break;
          default:
            in = assembleOne([&](Assembler &a) {
                if (rng.chance(0.5))
                    a.testRR(static_cast<Reg>(rng.below(8)),
                             static_cast<Reg>(rng.below(8)));
                else
                    a.aluRI(alu_ops[rng.below(8)],
                            static_cast<Reg>(rng.below(8)),
                            static_cast<i32>(rng.next()));
            });
            break;
        }
        checkInsn(in, start, mem_template,
                  "seed " + std::to_string(GetParam()) + " iter " +
                      std::to_string(iter));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrackExecRandom,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CrackExec, BranchesAndCalls)
{
    Pcg32 rng(11, 3);
    for (int iter = 0; iter < 100; ++iter) {
        CpuState start = randomState(rng);
        Memory mem;

        Assembler as(0x1000);
        auto l = as.newLabel();
        unsigned pick = rng.below(5);
        switch (pick) {
          case 0:
            as.jcc(static_cast<Cond>(rng.below(16)), l);
            break;
          case 1:
            as.jmp(l);
            break;
          case 2:
            as.call(l);
            break;
          case 3:
            start.regs[x86::EDI] = 0x1400;
            as.jmpInd(x86::EDI);
            break;
          default:
            // ret: plant a return address.
            mem.write32(start.regs[x86::ESP], 0x2222);
            as.ret();
            break;
        }
        for (int n = 0; n < 32; ++n)
            as.nop();
        as.bind(l);
        as.hlt();

        std::vector<u8> buf = as.finalize();
        buf.resize(x86::MAX_INSN_LEN + 32, 0x90);
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(buf.data(), buf.size()), 0x1000);
        ASSERT_TRUE(dr.ok);
        checkInsn(dr.insn, start, mem, "cti iter " + std::to_string(iter));
    }
}

TEST(CrackExec, UopCountsAreCisclike)
{
    // Sanity-check the crack expansion ratio on representative forms.
    auto count = [](const std::function<void(Assembler &)> &e) {
        Assembler as(0x1000);
        e(as);
        std::vector<u8> buf = as.finalize();
        buf.resize(x86::MAX_INSN_LEN + 1, 0x90);
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(buf.data(), buf.size()), 0x1000);
        EXPECT_TRUE(dr.ok);
        return uops::crack(dr.insn).uops.size();
    };

    EXPECT_EQ(count([](Assembler &a) { a.aluRR(Op::Add, x86::EAX,
                                               x86::ECX); }),
              1u);
    EXPECT_EQ(count([](Assembler &a) {
                  a.movRM(x86::EAX, MemRef{x86::EBX, x86::REG_NONE, 1, 4});
              }),
              1u);
    EXPECT_EQ(count([](Assembler &a) {
                  a.aluMR(Op::Add, MemRef{x86::EBX, x86::REG_NONE, 1, 4},
                          x86::ECX);
              }),
              3u); // load, add, store
    EXPECT_EQ(count([](Assembler &a) { a.push(x86::EAX); }), 2u);
    EXPECT_EQ(count([](Assembler &a) { a.pop(x86::EAX); }), 2u);
    EXPECT_EQ(count([](Assembler &a) { a.ret(); }), 3u);
    EXPECT_LE(count([](Assembler &a) {
                  auto l = a.newLabel();
                  a.bind(l);
                  a.call(l);
              }),
              4u);
}

TEST(CrackExec, ComplexClassification)
{
    auto crackOf = [](std::initializer_list<u8> bytes) {
        std::vector<u8> v(bytes);
        v.resize(x86::MAX_INSN_LEN + 1, 0x90);
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(v.data(), v.size()), 0x1000);
        EXPECT_TRUE(dr.ok) << dr.error;
        return uops::crack(dr.insn);
    };
    EXPECT_TRUE(crackOf({0xf7, 0xf1}).complex);  // div ecx
    EXPECT_TRUE(crackOf({0x0f, 0xa2}).complex);  // cpuid
    EXPECT_FALSE(crackOf({0x01, 0xc1}).complex); // add
    EXPECT_FALSE(crackOf({0x8b, 0x03}).complex); // mov eax,[ebx]
}

} // namespace
} // namespace cdvm
