/** @file Decoder unit tests: lengths, operands, prefixes, failures. */

#include <gtest/gtest.h>

#include "x86/decoder.hh"

namespace cdvm::x86
{
namespace
{

DecodeResult
dec(std::initializer_list<u8> bytes, Addr pc = 0x1000)
{
    std::vector<u8> v(bytes);
    v.resize(MAX_INSN_LEN + 1, 0x90);
    return decode(std::span<const u8>(v.data(), v.size()), pc);
}

TEST(Decoder, AluRegReg)
{
    // add ecx, eax  (01 c1: add r/m32, r32)
    DecodeResult r = dec({0x01, 0xc1});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Add);
    EXPECT_EQ(r.insn.length, 2u);
    EXPECT_EQ(r.insn.dst.reg, ECX);
    EXPECT_EQ(r.insn.src.reg, EAX);
    EXPECT_EQ(r.insn.opSize, 4u);
}

TEST(Decoder, AluLoadForm)
{
    // sub edx, [ebx+8]  (2b 53 08)
    DecodeResult r = dec({0x2b, 0x53, 0x08});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Sub);
    EXPECT_EQ(r.insn.dst.reg, EDX);
    ASSERT_TRUE(r.insn.src.isMem());
    EXPECT_EQ(r.insn.src.mem.base, EBX);
    EXPECT_EQ(r.insn.src.mem.disp, 8);
    EXPECT_EQ(r.insn.length, 3u);
}

TEST(Decoder, SibFullForm)
{
    // mov eax, [ebx+esi*4+0x12345678]  (8b 84 b3 78 56 34 12)
    DecodeResult r = dec({0x8b, 0x84, 0xb3, 0x78, 0x56, 0x34, 0x12});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Mov);
    ASSERT_TRUE(r.insn.src.isMem());
    EXPECT_EQ(r.insn.src.mem.base, EBX);
    EXPECT_EQ(r.insn.src.mem.index, ESI);
    EXPECT_EQ(r.insn.src.mem.scale, 4u);
    EXPECT_EQ(r.insn.src.mem.disp, 0x12345678);
    EXPECT_EQ(r.insn.length, 7u);
}

TEST(Decoder, SibNoBaseDisp32)
{
    // mov eax, [esi*8+0x100]  (8b 04 f5 00 01 00 00)
    DecodeResult r = dec({0x8b, 0x04, 0xf5, 0x00, 0x01, 0x00, 0x00});
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.insn.src.isMem());
    EXPECT_FALSE(r.insn.src.mem.hasBase());
    EXPECT_EQ(r.insn.src.mem.index, ESI);
    EXPECT_EQ(r.insn.src.mem.scale, 8u);
    EXPECT_EQ(r.insn.src.mem.disp, 0x100);
}

TEST(Decoder, AbsoluteDisp32)
{
    // mov eax, [0xdeadbeef]  (8b 05 ef be ad de)
    DecodeResult r = dec({0x8b, 0x05, 0xef, 0xbe, 0xad, 0xde});
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.insn.src.isMem());
    EXPECT_FALSE(r.insn.src.mem.hasBase());
    EXPECT_FALSE(r.insn.src.mem.hasIndex());
    EXPECT_EQ(static_cast<u32>(r.insn.src.mem.disp), 0xdeadbeefu);
}

TEST(Decoder, EbpBaseNeedsDisp)
{
    // mov eax, [ebp]  must encode as disp8=0: 8b 45 00
    DecodeResult r = dec({0x8b, 0x45, 0x00});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.src.mem.base, EBP);
    EXPECT_EQ(r.insn.src.mem.disp, 0);
    EXPECT_EQ(r.insn.length, 3u);
}

TEST(Decoder, OperandSizePrefix)
{
    // 66 01 c8 -> add ax, cx
    DecodeResult r = dec({0x66, 0x01, 0xc8});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Add);
    EXPECT_EQ(r.insn.opSize, 2u);
    EXPECT_EQ(r.insn.length, 3u);
}

TEST(Decoder, ByteAlu)
{
    // 00 d8 -> add al, bl
    DecodeResult r = dec({0x00, 0xd8});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Add);
    EXPECT_EQ(r.insn.opSize, 1u);
    EXPECT_EQ(r.insn.dst.reg, EAX);
    EXPECT_EQ(r.insn.src.reg, EBX);
}

TEST(Decoder, Group1SignExtendedImm8)
{
    // 83 e8 ff -> sub eax, -1
    DecodeResult r = dec({0x83, 0xe8, 0xff});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Sub);
    EXPECT_EQ(r.insn.src.imm, -1);
}

TEST(Decoder, JccShortTargets)
{
    // 74 05 at pc 0x1000 -> je 0x1007
    DecodeResult r = dec({0x74, 0x05});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Jcc);
    EXPECT_EQ(r.insn.cond, Cond::E);
    EXPECT_EQ(r.insn.target, 0x1007u);

    // backward: 75 fe -> jne 0x1000
    r = dec({0x75, 0xfe});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.target, 0x1000u);
}

TEST(Decoder, JccNearTargets)
{
    // 0f 84 10 00 00 00 -> je 0x1016
    DecodeResult r = dec({0x0f, 0x84, 0x10, 0x00, 0x00, 0x00});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.insn.op, Op::Jcc);
    EXPECT_EQ(r.insn.length, 6u);
    EXPECT_EQ(r.insn.target, 0x1016u);
}

TEST(Decoder, CallAndRet)
{
    DecodeResult r = dec({0xe8, 0x00, 0x01, 0x00, 0x00});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Call);
    EXPECT_EQ(r.insn.target, 0x1105u);

    r = dec({0xc3});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Ret);

    r = dec({0xc2, 0x08, 0x00});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Ret);
    EXPECT_EQ(r.insn.src.imm, 8);
}

TEST(Decoder, Group3AndGroup5)
{
    // f7 d8 -> neg eax
    DecodeResult r = dec({0xf7, 0xd8});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Neg);

    // f7 e1 -> mul ecx
    r = dec({0xf7, 0xe1});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::MulA);

    // ff d6 -> call esi
    r = dec({0xff, 0xd6});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::CallInd);

    // ff 36 ... push [esi]? rm=110 -> push dword [esi]
    r = dec({0xff, 0x36});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Push);
    EXPECT_TRUE(r.insn.src.isMem());
}

TEST(Decoder, TwoByteForms)
{
    // 0f b6 c1 -> movzx eax, cl
    DecodeResult r = dec({0x0f, 0xb6, 0xc1});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Movzx);
    EXPECT_EQ(r.insn.opSize, 1u);

    // 0f af c3 -> imul eax, ebx
    r = dec({0x0f, 0xaf, 0xc3});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Imul);

    // 0f 94 c0 -> sete al
    r = dec({0x0f, 0x94, 0xc0});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Setcc);
    EXPECT_EQ(r.insn.cond, Cond::E);
}

TEST(Decoder, Shifts)
{
    // c1 e0 04 -> shl eax, 4
    DecodeResult r = dec({0xc1, 0xe0, 0x04});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Shl);
    EXPECT_EQ(r.insn.src.imm, 4);

    // d1 f8 -> sar eax, 1
    r = dec({0xd1, 0xf8});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Sar);
    EXPECT_EQ(r.insn.src.imm, 1);

    // d3 e8 -> shr eax, cl
    r = dec({0xd3, 0xe8});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.insn.op, Op::Shr);
    EXPECT_TRUE(r.insn.src.isReg());
}

TEST(Decoder, RejectsUnknownOpcodes)
{
    EXPECT_FALSE(dec({0x0f, 0x0b}).ok); // UD2
    EXPECT_FALSE(dec({0xd8, 0xc0}).ok); // x87
}

TEST(Decoder, RejectsPrefixFlood)
{
    std::vector<u8> v(12, 0x66);
    v.push_back(0x90);
    v.resize(MAX_INSN_LEN + 4, 0x90);
    EXPECT_FALSE(decode(std::span<const u8>(v.data(), v.size()), 0).ok);
}

TEST(Decoder, ClassifiesCtisAndComplex)
{
    EXPECT_TRUE(dec({0xc3}).insn.isCti());
    EXPECT_TRUE(dec({0xe9, 0, 0, 0, 0}).insn.isCti());
    EXPECT_TRUE(dec({0xf4}).insn.isCti());       // HLT ends blocks
    EXPECT_TRUE(dec({0x0f, 0xa2}).insn.isComplex()); // CPUID
    EXPECT_TRUE(dec({0xf7, 0xf1}).insn.isComplex()); // DIV
    EXPECT_FALSE(dec({0x01, 0xc1}).insn.isComplex());
}

TEST(Decoder, InsnLengthHelper)
{
    std::vector<u8> v{0x8b, 0x84, 0xb3, 0x78, 0x56, 0x34, 0x12};
    v.resize(MAX_INSN_LEN + 1, 0x90);
    EXPECT_EQ(insnLength(std::span<const u8>(v.data(), v.size()), 0),
              7u);
    std::vector<u8> bad{0x0f, 0x0b};
    bad.resize(MAX_INSN_LEN + 1, 0x90);
    EXPECT_EQ(insnLength(std::span<const u8>(bad.data(), bad.size()), 0),
              0u);
}

} // namespace
} // namespace cdvm::x86
