/**
 * @file
 * The centerpiece property suite: differential execution.
 *
 * For randomly generated programs, every emulation strategy of the
 * co-designed VM -- pure interpretation, BBT-only, staged BBT+SBT,
 * interpreter+SBT, and x86-mode (VM.fe) with hardware hotspot
 * detection -- must produce exactly the same architected x86 state and
 * the same data memory image as the reference interpreter.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

namespace cdvm
{
namespace
{

using test::RunResult;
using test::runInterp;
using test::runVmm;

using test::sameOutcome;

vmm::VmmConfig
cfgSoft()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.hotThreshold = 30; // low threshold so SBT really triggers
    return c;
}

vmm::VmmConfig
cfgSoftTmpl()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoftTmpl();
    c.hotThreshold = 30;
    return c;
}

vmm::VmmConfig
cfgBeTmpl()
{
    vmm::VmmConfig c = engine::EngineConfig::vmBeTmpl();
    c.hotThreshold = 30;
    return c;
}

vmm::VmmConfig
cfgBbtOnly()
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoft();
    c.enableSbt = false;
    return c;
}

vmm::VmmConfig
cfgInterpSbt()
{
    vmm::VmmConfig c = engine::EngineConfig::vmInterp();
    c.interpHotThreshold = 10;
    return c;
}

vmm::VmmConfig
cfgFrontend()
{
    vmm::VmmConfig c = engine::EngineConfig::vmFe();
    c.bbbParams.hotThreshold = 30;
    return c;
}

vmm::VmmConfig
cfgBackend()
{
    vmm::VmmConfig c = engine::EngineConfig::vmBe();
    c.hotThreshold = 30;
    return c;
}

vmm::VmmConfig
cfgDual()
{
    vmm::VmmConfig c = engine::EngineConfig::vmDual();
    c.bbbParams.hotThreshold = 30;
    return c;
}

vmm::VmmConfig
cfgSoftAsync(bool deterministic)
{
    vmm::VmmConfig c = engine::EngineConfig::vmSoftAsync();
    c.hotThreshold = 30;
    c.asyncDeterministic = deterministic;
    return c;
}

vmm::VmmConfig
cfgBackendAsync()
{
    vmm::VmmConfig c = engine::EngineConfig::vmBeAsync();
    c.hotThreshold = 30;
    return c;
}

class DifferentialTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(DifferentialTest, AllStrategiesMatchInterpreter)
{
    workload::ProgramParams pp;
    pp.seed = GetParam();
    pp.numFuncs = 3 + static_cast<unsigned>(GetParam() % 3);
    pp.mainIterations = 40;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted))
        << "reference run did not halt";

    struct Case
    {
        const char *name;
        vmm::VmmConfig cfg;
    };
    const Case cases[] = {
        {"vm.soft (BBT+SBT)", cfgSoft()},
        {"vm.soft.tmpl (template BBT+SBT)", cfgSoftTmpl()},
        {"vm.be.tmpl (template BBT+BBB)", cfgBeTmpl()},
        {"BBT only", cfgBbtOnly()},
        {"interp+SBT", cfgInterpSbt()},
        {"vm.fe (x86-mode+BBB)", cfgFrontend()},
        {"vm.be (XLT-assisted BBT)", cfgBackend()},
        {"vm.dual (XLT+BBB)", cfgDual()},
        {"vm.soft.async", cfgSoftAsync(false)},
        {"vm.soft.async deterministic", cfgSoftAsync(true)},
        {"vm.be.async", cfgBackendAsync()},
    };

    for (const Case &c : cases) {
        x86::Memory mem;
        vmm::VmmStats stats;
        RunResult got = runVmm(prog, mem, c.cfg, &stats);
        EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem))
            << c.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10, 11, 12));

TEST(DifferentialFeatures, FeatureKnobsStillMatch)
{
    for (u64 seed = 100; seed < 106; ++seed) {
        workload::ProgramParams pp;
        pp.seed = seed;
        pp.withDiv = seed % 2 == 0;
        pp.withIndirect = seed % 3 != 0;
        pp.with16Bit = seed % 2 == 1;
        pp.mainIterations = 25;
        workload::Program prog = workload::generateProgram(pp);

        x86::Memory ref_mem;
        RunResult ref = runInterp(prog, ref_mem);
        ASSERT_EQ(static_cast<int>(ref.exit),
                  static_cast<int>(x86::Exit::Halted));

        x86::Memory mem;
        RunResult got = runVmm(prog, mem, cfgSoft());
        EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem))
            << "seed " << seed;
    }
}

TEST(DifferentialStats, SbtActuallyRunsAndFuses)
{
    workload::ProgramParams pp;
    pp.seed = 42;
    pp.mainIterations = 60;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory mem;
    vmm::VmmStats stats;
    runVmm(prog, mem, cfgSoft(), &stats);

    EXPECT_GT(stats.bbtTranslations, 0u);
    EXPECT_GT(stats.sbtTranslations, 0u)
        << "hot threshold was never crossed; test workload too small";
    EXPECT_GT(stats.insnsSbtCode, 0u);
    EXPECT_GT(stats.hotspotDetections, 0u);
    EXPECT_GT(stats.chainFollows, 0u);
}

TEST(DifferentialStats, TinyCodeCacheStillCorrect)
{
    // Large static footprint (lots of code to translate) but a short
    // dynamic run, so retranslation-after-flush dominates.
    workload::ProgramParams pp;
    pp.seed = 77;
    pp.numFuncs = 6;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 4;
    workload::Program prog = workload::generateProgram(pp);

    x86::Memory ref_mem;
    RunResult ref = runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(x86::Exit::Halted))
        << "reference run did not halt within budget";

    vmm::VmmConfig c = cfgSoft();
    c.bbtCacheBytes = 1024; // force flush/retranslate cycles
    c.sbtCacheBytes = 8192;

    x86::Memory mem;
    vmm::VmmStats stats;
    RunResult got = runVmm(prog, mem, c, &stats);
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got, mem))
        << "tiny code cache";
    EXPECT_GT(stats.bbtCacheFlushes, 0u)
        << "cache was big enough that flushing never happened";

    // The template tier must survive the same flush/retranslate storm.
    vmm::VmmConfig ct = cfgSoftTmpl();
    ct.bbtCacheBytes = 1024;
    ct.sbtCacheBytes = 8192;
    x86::Memory mem_t;
    vmm::VmmStats stats_t;
    RunResult got_t = runVmm(prog, mem_t, ct, &stats_t);
    EXPECT_TRUE(sameOutcome(prog, ref, ref_mem, got_t, mem_t))
        << "tiny code cache (template tier)";
    EXPECT_GT(stats_t.bbtCacheFlushes, 0u);
}

} // namespace
} // namespace cdvm
