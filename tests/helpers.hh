/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef CDVM_TESTS_HELPERS_HH
#define CDVM_TESTS_HELPERS_HH

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/asm.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::test
{

/** Outcome of a full program run. */
struct RunResult
{
    x86::Exit exit = x86::Exit::None;
    x86::CpuState cpu;
    InstCount retired = 0;
};

/** Run a program to completion under pure interpretation. */
inline RunResult
runInterp(const workload::Program &prog, x86::Memory &mem,
          InstCount max_insns = 10'000'000)
{
    prog.loadInto(mem);
    RunResult r;
    r.cpu = prog.initialState();
    x86::Interpreter interp(r.cpu, mem);
    r.exit = interp.run(max_insns);
    r.retired = r.cpu.icount;
    return r;
}

/** Run a program to completion under a VMM configuration. */
inline RunResult
runVmm(const workload::Program &prog, x86::Memory &mem,
       const vmm::VmmConfig &cfg, vmm::VmmStats *stats_out = nullptr,
       InstCount max_insns = 10'000'000)
{
    prog.loadInto(mem);
    RunResult r;
    r.cpu = prog.initialState();
    vmm::Vmm monitor(mem, cfg);
    r.exit = monitor.run(r.cpu, max_insns);
    r.retired = r.cpu.icount;
    if (stats_out)
        *stats_out = monitor.stats();
    return r;
}

/**
 * Compare two runs' architected state and memory windows.
 *
 * AssertionResult-style predicate: usable as
 * EXPECT_TRUE(sameOutcome(...)) << "seed " << seed, so a failing
 * sweep iteration reports which seed/config diverged instead of
 * aborting the whole test from inside a void helper.
 */
inline ::testing::AssertionResult
sameOutcome(const workload::Program &prog, const RunResult &ref,
            x86::Memory &ref_mem, const RunResult &got,
            x86::Memory &got_mem)
{
    std::ostringstream why;
    if (ref.exit != got.exit)
        why << " exit " << static_cast<int>(ref.exit) << " vs "
            << static_cast<int>(got.exit) << ";";
    if (ref.cpu.eip != got.cpu.eip)
        why << " eip 0x" << std::hex << ref.cpu.eip << " vs 0x"
            << got.cpu.eip << std::dec << ";";
    for (unsigned r = 0; r < x86::NUM_REGS; ++r) {
        if (ref.cpu.regs[r] != got.cpu.regs[r])
            why << " reg " << x86::regName(static_cast<x86::Reg>(r))
                << " 0x" << std::hex << ref.cpu.regs[r] << " vs 0x"
                << got.cpu.regs[r] << std::dec << ";";
    }
    if ((ref.cpu.eflags & x86::FLAG_ALL) !=
        (got.cpu.eflags & x86::FLAG_ALL))
        why << " eflags 0x" << std::hex
            << (ref.cpu.eflags & x86::FLAG_ALL) << " vs 0x"
            << (got.cpu.eflags & x86::FLAG_ALL) << std::dec << ";";

    if (ref_mem.readBlock(prog.dataBase, prog.dataBytes) !=
        got_mem.readBlock(prog.dataBase, prog.dataBytes))
        why << " data segment differs;";
    if (ref_mem.readBlock(prog.stackTop - 4096, 4096) !=
        got_mem.readBlock(prog.stackTop - 4096, 4096))
        why << " stack window differs;";

    if (why.str().empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "outcome mismatch:"
                                         << why.str();
}

/** Assemble a single snippet at a fixed origin and load it. */
inline workload::Program
snippetProgram(x86::Assembler &as)
{
    workload::Program p;
    p.codeBase = as.origin();
    p.entry = as.origin();
    p.image = as.finalize();
    p.dataBase = 0x00800000;
    p.dataBytes = 64 * 1024;
    p.stackTop = 0x7fff0000;
    return p;
}

} // namespace cdvm::test

#endif // CDVM_TESTS_HELPERS_HH
