/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef CDVM_TESTS_HELPERS_HH
#define CDVM_TESTS_HELPERS_HH

#include <vector>

#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/asm.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::test
{

/** Outcome of a full program run. */
struct RunResult
{
    x86::Exit exit = x86::Exit::None;
    x86::CpuState cpu;
    InstCount retired = 0;
};

/** Run a program to completion under pure interpretation. */
inline RunResult
runInterp(const workload::Program &prog, x86::Memory &mem,
          InstCount max_insns = 10'000'000)
{
    prog.loadInto(mem);
    RunResult r;
    r.cpu = prog.initialState();
    x86::Interpreter interp(r.cpu, mem);
    r.exit = interp.run(max_insns);
    r.retired = r.cpu.icount;
    return r;
}

/** Run a program to completion under a VMM configuration. */
inline RunResult
runVmm(const workload::Program &prog, x86::Memory &mem,
       const vmm::VmmConfig &cfg, vmm::VmmStats *stats_out = nullptr,
       InstCount max_insns = 10'000'000)
{
    prog.loadInto(mem);
    RunResult r;
    r.cpu = prog.initialState();
    vmm::Vmm monitor(mem, cfg);
    r.exit = monitor.run(r.cpu, max_insns);
    r.retired = r.cpu.icount;
    if (stats_out)
        *stats_out = monitor.stats();
    return r;
}

/** Assemble a single snippet at a fixed origin and load it. */
inline workload::Program
snippetProgram(x86::Assembler &as)
{
    workload::Program p;
    p.codeBase = as.origin();
    p.entry = as.origin();
    p.image = as.finalize();
    p.dataBase = 0x00800000;
    p.dataBytes = 64 * 1024;
    p.stackTop = 0x7fff0000;
    return p;
}

} // namespace cdvm::test

#endif // CDVM_TESTS_HELPERS_HH
