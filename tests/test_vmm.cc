/**
 * @file
 * VMM runtime tests beyond the differential suite: precise-state
 * recovery through faults in translated code, staged-transition
 * behaviour, chaining, and the analytical model.
 */

#include <gtest/gtest.h>

#include "analysis/model.hh"
#include "helpers.hh"
#include "x86/asm.hh"

namespace cdvm
{
namespace
{

using namespace cdvm::x86;

TEST(Model, Eq2PaperNumbers)
{
    EXPECT_NEAR(analysis::paperHotThreshold(), 8000.0, 1e-6);
    EXPECT_NEAR(analysis::hotThreshold(1152.0, 1.15), 7680.0, 1.0);
    EXPECT_NEAR(analysis::hotThreshold(1200.0, 1.20), 6000.0, 1.0);
}

TEST(Model, Eq1PaperNumbers)
{
    analysis::Eq1Breakdown e = analysis::paperEq1();
    EXPECT_NEAR(e.bbtComponent, 15.75e6, 1e3);
    EXPECT_NEAR(e.sbtComponent, 5.022e6, 1e3);
    EXPECT_GT(e.bbtComponent, e.sbtComponent * 3.0);
}

TEST(Vmm, PreciseStateOnDivideFault)
{
    // A block whose middle instruction faults: the VM must recover the
    // exact architected state the interpreter produces.
    Assembler as(0x1000);
    as.movRI(EAX, 100);
    as.movRI(EDX, 0);
    as.movRI(EBX, 7);          // some state before the fault
    as.aluRI(Op::Add, EBX, 1);
    as.movRI(ECX, 0);
    as.divA(ECX);              // #DE
    as.movRI(ESI, 0x999);      // must NOT execute
    as.hlt();

    workload::Program prog;
    {
        Assembler as2(0x1000);
        as2.movRI(EAX, 100);
        as2.movRI(EDX, 0);
        as2.movRI(EBX, 7);
        as2.aluRI(Op::Add, EBX, 1);
        as2.movRI(ECX, 0);
        as2.divA(ECX);
        as2.movRI(ESI, 0x999);
        as2.hlt();
        prog = test::snippetProgram(as2);
    }

    x86::Memory ref_mem;
    test::RunResult ref = test::runInterp(prog, ref_mem);
    ASSERT_EQ(static_cast<int>(ref.exit),
              static_cast<int>(Exit::Trap));

    vmm::VmmConfig cfg;
    x86::Memory mem;
    vmm::VmmStats stats;
    test::RunResult got = test::runVmm(prog, mem, cfg, &stats);
    EXPECT_EQ(static_cast<int>(got.exit), static_cast<int>(Exit::Trap));
    EXPECT_EQ(got.cpu.eip, ref.cpu.eip); // points at the div
    for (unsigned r = 0; r < NUM_REGS; ++r)
        EXPECT_EQ(got.cpu.regs[r], ref.cpu.regs[r]) << r;
    EXPECT_GT(stats.preciseStateRecoveries, 0u);
}

TEST(Vmm, Int3PreciseState)
{
    Assembler as(0x1000);
    as.movRI(EAX, 42);
    as.int3();
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    x86::Memory mem;
    vmm::VmmStats stats;
    test::RunResult got = test::runVmm(prog, mem, vmm::VmmConfig{},
                                       &stats);
    EXPECT_EQ(static_cast<int>(got.exit), static_cast<int>(Exit::Trap));
    EXPECT_EQ(got.cpu.regs[EAX], 42u);
}

TEST(Vmm, StagedTransitionCounts)
{
    // A two-phase program: phase 1 loops block A hot; phase 2 touches
    // fresh code. Verifies the staged pipeline acted as configured.
    Assembler as(0x1000);
    auto loop = as.newLabel();
    as.movRI(ECX, 3000);
    as.bind(loop);
    as.aluRI(Op::Add, EAX, 1);
    as.aluRI(Op::Xor, EDX, 3);
    as.dec(ECX);
    as.jcc(Cond::NE, loop);
    for (int i = 0; i < 50; ++i)
        as.aluRI(Op::Add, ESI, i); // cold tail, BBT only
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    vmm::VmmConfig cfg;
    cfg.hotThreshold = 500;
    x86::Memory mem;
    vmm::VmmStats st;
    test::RunResult r = test::runVmm(prog, mem, cfg, &st);
    ASSERT_EQ(static_cast<int>(r.exit), static_cast<int>(Exit::Halted));

    EXPECT_GT(st.bbtTranslations, 0u);
    EXPECT_EQ(st.sbtTranslations, 1u); // exactly the hot loop
    EXPECT_GT(st.insnsSbtCode, st.insnsBbtCode);
    EXPECT_GT(st.chainFollows, st.dispatches); // loop chains to itself
    EXPECT_EQ(st.insnsInterp, 0u);
    EXPECT_EQ(st.insnsX86Mode, 0u);
}

TEST(Vmm, NoSbtBelowThreshold)
{
    Assembler as(0x1000);
    auto loop = as.newLabel();
    as.movRI(ECX, 50); // well below the threshold
    as.bind(loop);
    as.aluRI(Op::Add, EAX, 1);
    as.dec(ECX);
    as.jcc(Cond::NE, loop);
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    vmm::VmmConfig cfg;
    cfg.hotThreshold = 8000;
    x86::Memory mem;
    vmm::VmmStats st;
    test::runVmm(prog, mem, cfg, &st);
    EXPECT_EQ(st.sbtTranslations, 0u);
    EXPECT_EQ(st.hotspotDetections, 0u);
}

TEST(Vmm, X86ModeUsesBbbAndNoBbt)
{
    Assembler as(0x1000);
    auto loop = as.newLabel();
    as.movRI(ECX, 2000);
    as.bind(loop);
    as.aluRI(Op::Add, EAX, 1);
    as.dec(ECX);
    as.jcc(Cond::NE, loop);
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    vmm::VmmConfig cfg;
    cfg.cold = engine::ColdKind::HardwareX86Mode;
    cfg.detector = engine::DetectorKind::Bbb;
    cfg.bbbParams.hotThreshold = 300;
    x86::Memory mem;
    vmm::VmmStats st;
    test::RunResult r = test::runVmm(prog, mem, cfg, &st);
    ASSERT_EQ(static_cast<int>(r.exit), static_cast<int>(Exit::Halted));
    EXPECT_EQ(st.bbtTranslations, 0u);
    EXPECT_GT(st.insnsX86Mode, 0u);
    EXPECT_GT(st.sbtTranslations, 0u); // BBB found the loop
    EXPECT_GT(st.insnsSbtCode, 0u);
}

TEST(Vmm, BudgetOvershootIsBounded)
{
    Assembler as(0x1000);
    auto loop = as.newLabel();
    as.movRI(ECX, 100000);
    as.bind(loop);
    as.dec(ECX);
    as.jcc(Cond::NE, loop);
    as.hlt();
    workload::Program prog = test::snippetProgram(as);

    x86::Memory mem;
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();
    vmm::Vmm vm(mem, vmm::VmmConfig{});
    x86::Exit e = vm.run(cpu, 1000);
    EXPECT_EQ(static_cast<int>(e), static_cast<int>(Exit::None));
    // Translations complete atomically: overshoot stays within one
    // region (64 insns max by default).
    EXPECT_GE(vm.stats().totalRetired(), 1000u);
    EXPECT_LE(vm.stats().totalRetired(), 1000u + 200u);
}

} // namespace
} // namespace cdvm
