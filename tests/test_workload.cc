/**
 * @file
 * Workload tests: the synthetic x86 program generator (validity,
 * determinism, termination) and the statistical block-trace generator
 * (determinism, calibration targets, arrival behaviour).
 */

#include <gtest/gtest.h>

#include "analysis/freq_profile.hh"
#include "helpers.hh"
#include "x86/decoder.hh"
#include "workload/trace_gen.hh"
#include "workload/winstone.hh"

namespace cdvm::workload
{
namespace
{

TEST(ProgramGen, DeterministicPerSeed)
{
    ProgramParams pp;
    pp.seed = 9;
    Program a = generateProgram(pp);
    Program b = generateProgram(pp);
    EXPECT_EQ(a.image, b.image);
    pp.seed = 10;
    Program c = generateProgram(pp);
    EXPECT_NE(a.image, c.image);
}

TEST(ProgramGen, TerminatesAndBalancesStack)
{
    for (u64 seed = 1; seed <= 20; ++seed) {
        ProgramParams pp;
        pp.seed = seed;
        Program prog = generateProgram(pp);
        x86::Memory mem;
        test::RunResult r = test::runInterp(prog, mem, 30'000'000);
        EXPECT_EQ(static_cast<int>(r.exit),
                  static_cast<int>(x86::Exit::Halted))
            << "seed " << seed;
        EXPECT_EQ(r.cpu.regs[x86::ESP],
                  static_cast<u32>(prog.stackTop))
            << "seed " << seed;
    }
}

TEST(ProgramGen, EveryInstructionDecodes)
{
    ProgramParams pp;
    pp.seed = 33;
    Program prog = generateProgram(pp);
    // Walking the image from the entry must decode cleanly; we walk
    // linearly, which works because the generator only emits code.
    std::size_t pos = 0;
    unsigned count = 0;
    while (pos < prog.image.size()) {
        std::vector<u8> win(prog.image.begin() +
                                static_cast<long>(pos),
                            prog.image.end());
        win.resize(std::max<std::size_t>(win.size(),
                                         x86::MAX_INSN_LEN + 1),
                   0x90);
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(win.data(), win.size()),
            prog.codeBase + pos);
        ASSERT_TRUE(dr.ok) << "at +" << pos << ": " << dr.error;
        pos += dr.insn.length;
        ++count;
    }
    EXPECT_GT(count, 100u);
}

TEST(ProgramGen, FeatureKnobsRespected)
{
    ProgramParams pp;
    pp.seed = 4;
    pp.withDiv = false;
    Program prog = generateProgram(pp);
    std::size_t pos = 0;
    while (pos < prog.image.size()) {
        std::vector<u8> win(prog.image.begin() +
                                static_cast<long>(pos),
                            prog.image.end());
        win.resize(std::max<std::size_t>(win.size(),
                                         x86::MAX_INSN_LEN + 1),
                   0x90);
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(win.data(), win.size()),
            prog.codeBase + pos);
        ASSERT_TRUE(dr.ok);
        EXPECT_NE(dr.insn.op, x86::Op::DivA);
        pos += dr.insn.length;
    }
}

TEST(TraceGen, DeterministicPerSeed)
{
    TraceParams tp;
    tp.seed = 5;
    tp.totalInsns = 100'000;
    tp.numBlocks = 500;
    BlockTrace a(tp), b(tp);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(TraceGen, BlockMetadataSane)
{
    TraceParams tp;
    tp.seed = 6;
    tp.numBlocks = 2000;
    BlockTrace t(tp);
    Addr prev_end = 0;
    for (const BlockInfo &b : t.blocks()) {
        EXPECT_GE(b.insns, 1u);
        EXPECT_LE(b.insns, 64u);
        EXPECT_GE(b.x86Addr, prev_end); // layout is disjoint, ordered
        prev_end = b.x86Addr + b.bytes;
        EXPECT_LT(b.region, 2000u / 4 + 1);
    }
}

TEST(TraceGen, ReferencesValidAndCoverFootprint)
{
    TraceParams tp;
    tp.seed = 7;
    tp.totalInsns = 2'000'000;
    tp.numBlocks = 3000;
    BlockTrace t(tp);
    std::vector<bool> seen(t.blocks().size(), false);
    u64 insns = 0;
    while (insns < tp.totalInsns) {
        u32 id = t.next();
        ASSERT_LT(id, t.blocks().size());
        seen[id] = true;
        insns += t.blocks()[id].insns;
    }
    u64 touched = 0;
    for (bool s : seen)
        touched += s;
    // Most of the universe arrives and gets touched.
    EXPECT_GT(touched, t.blocks().size() / 2);
}

TEST(TraceGen, CalibrationTargets)
{
    // The headline Section 3.2 statistics at 100M-equivalent scale
    // (run at 20M and scale loosely: footprint targets are checked in
    // ratio form to keep the test fast).
    AppProfile avg = winstoneAverage(20'000'000);
    analysis::FreqProfile p = analysis::profileTrace(avg.trace);

    // Static touched: tens of thousands of instructions.
    EXPECT_GT(p.staticInsnsTouched, 20'000u);
    EXPECT_LT(p.staticInsnsTouched, 200'000u);
    // The hot set is a small fraction of the touched static code.
    u64 hot = p.staticAtOrAbove(8000);
    EXPECT_LT(hot * 20, p.staticInsnsTouched);
    // But it covers a large fraction of dynamic execution.
    EXPECT_GT(p.dynamicShareAtOrAbove(8000), 0.35);
}

TEST(Winstone, SuiteProperties)
{
    auto apps = winstone2004(50'000'000);
    ASSERT_EQ(apps.size(), 10u);
    double gain = 0;
    for (const auto &a : apps) {
        EXPECT_GT(a.cpiRef, 0.5);
        EXPECT_LT(a.cpiRef, 2.0);
        EXPECT_GT(a.steadyGain, 0.0);
        gain += a.steadyGain;
        EXPECT_EQ(a.trace.totalInsns, 50'000'000u);
    }
    // Suite-average steady-state gain ~8% (paper Section 2).
    EXPECT_NEAR(gain / 10.0, 0.08, 0.015);
    // Project is the weak-gain outlier.
    auto project = std::find_if(apps.begin(), apps.end(),
                                [](const AppProfile &a) {
                                    return a.name == "Project";
                                });
    ASSERT_NE(project, apps.end());
    EXPECT_NEAR(project->steadyGain, 0.03, 1e-9);
    // SPEC-like profile has the bigger gain (paper: 18% vs 8%).
    EXPECT_NEAR(specIntLike(1'000'000).steadyGain, 0.18, 1e-9);
}

} // namespace
} // namespace cdvm::workload
