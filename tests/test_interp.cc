/** @file Interpreter semantics: flags, partial registers, stack ops. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "x86/asm.hh"
#include "x86/interp.hh"

namespace cdvm::x86
{
namespace
{

struct Machine
{
    Memory mem;
    CpuState cpu;

    explicit Machine(Assembler &as)
    {
        std::vector<u8> img = as.finalize();
        mem.writeBlock(as.origin(), img);
        cpu.eip = static_cast<u32>(as.origin());
        cpu.regs[ESP] = 0x7fff0000;
    }

    Exit
    run()
    {
        Interpreter in(cpu, mem);
        return in.run(100000);
    }
};

TEST(Interp, AddCarryAndOverflow)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0xffffffff);
    as.aluRI(Op::Add, EAX, 1);
    as.hlt();
    Machine m(as);
    EXPECT_EQ(m.run(), Exit::Halted);
    EXPECT_EQ(m.cpu.regs[EAX], 0u);
    EXPECT_TRUE(m.cpu.flag(FLAG_CF));
    EXPECT_TRUE(m.cpu.flag(FLAG_ZF));
    EXPECT_FALSE(m.cpu.flag(FLAG_OF));
    EXPECT_TRUE(m.cpu.flag(FLAG_AF));
}

TEST(Interp, SignedOverflow)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0x7fffffff);
    as.aluRI(Op::Add, EAX, 1);
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 0x80000000u);
    EXPECT_TRUE(m.cpu.flag(FLAG_OF));
    EXPECT_TRUE(m.cpu.flag(FLAG_SF));
    EXPECT_FALSE(m.cpu.flag(FLAG_CF));
}

TEST(Interp, SubBorrowChain)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0);
    as.movRI(EDX, 5);
    as.aluRI(Op::Sub, EAX, 1); // EAX=-1, CF=1
    as.aluRI(Op::Sbb, EDX, 0); // EDX=4
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 0xffffffffu);
    EXPECT_EQ(m.cpu.regs[EDX], 4u);
}

TEST(Interp, IncPreservesCarry)
{
    Assembler as(0x1000);
    as.stc();
    as.movRI(EAX, 7);
    as.inc(EAX);
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 8u);
    EXPECT_TRUE(m.cpu.flag(FLAG_CF));
}

TEST(Interp, HighByteRegisters)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0x11223344);
    // mov ah, 0x99  (b4 99)
    as.db(0xb4);
    as.db(0x99);
    // add al, ah  (00 e0)
    as.db(0x00);
    as.db(0xe0);
    as.hlt();
    Machine m(as);
    m.run();
    // AL = 0x44 + 0x99 = 0xdd; AH = 0x99.
    EXPECT_EQ(m.cpu.regs[EAX], 0x112299ddu);
}

TEST(Interp, SixteenBitPreservesUpper)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0xaaaa0001);
    as.movRI(ECX, 0x5555ffff);
    as.db(0x66); // add ax, cx
    as.aluRR(Op::Add, EAX, ECX);
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 0xaaaa0000u);
    EXPECT_TRUE(m.cpu.flag(FLAG_CF));
    EXPECT_TRUE(m.cpu.flag(FLAG_ZF));
}

TEST(Interp, PushPopCallRet)
{
    Assembler as(0x1000);
    auto fn = as.newLabel();
    auto over = as.newLabel();
    as.movRI(EAX, 1);
    as.call(fn);
    as.aluRI(Op::Add, EAX, 100);
    as.jmp(over);
    as.bind(fn);
    as.push(EAX);
    as.movRI(EAX, 42);
    as.pop(EDX); // EDX = 1
    as.ret();
    as.bind(over);
    as.hlt();
    Machine m(as);
    EXPECT_EQ(m.run(), Exit::Halted);
    EXPECT_EQ(m.cpu.regs[EAX], 142u);
    EXPECT_EQ(m.cpu.regs[EDX], 1u);
    EXPECT_EQ(m.cpu.regs[ESP], 0x7fff0000u); // balanced
}

TEST(Interp, MulWideAndDiv)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0x10000);
    as.movRI(ECX, 0x10000);
    as.mulA(ECX); // EDX:EAX = 0x1_0000_0000
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 0u);
    EXPECT_EQ(m.cpu.regs[EDX], 1u);
    EXPECT_TRUE(m.cpu.flag(FLAG_CF));
    EXPECT_TRUE(m.cpu.flag(FLAG_OF));

    Assembler as2(0x1000);
    as2.movRI(EDX, 0);
    as2.movRI(EAX, 100);
    as2.movRI(ECX, 7);
    as2.divA(ECX);
    as2.hlt();
    Machine m2(as2);
    m2.run();
    EXPECT_EQ(m2.cpu.regs[EAX], 14u);
    EXPECT_EQ(m2.cpu.regs[EDX], 2u);
}

TEST(Interp, DivideByZeroTraps)
{
    Assembler as(0x1000);
    as.movRI(ECX, 0);
    as.divA(ECX);
    as.hlt();
    Machine m(as);
    EXPECT_EQ(m.run(), Exit::Trap);
}

TEST(Interp, IdivOverflowTraps)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0x80000000); // EDX:EAX = INT_MIN (sign-extended)
    as.movRI(EDX, 0xffffffff);
    as.movRI(ECX, 0xffffffff); // -1
    as.idivA(ECX);             // INT_MIN / -1 overflows
    as.hlt();
    Machine m(as);
    EXPECT_EQ(m.run(), Exit::Trap);
}

TEST(Interp, ShiftFlagSemantics)
{
    Assembler as(0x1000);
    as.movRI(EAX, 0x80000001);
    as.shiftRI(Op::Shl, EAX, 1); // CF = old MSB
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 2u);
    EXPECT_TRUE(m.cpu.flag(FLAG_CF));

    Assembler as2(0x1000);
    as2.movRI(EAX, 0xf0000000);
    as2.shiftRI(Op::Sar, EAX, 4);
    as2.hlt();
    Machine m2(as2);
    m2.run();
    EXPECT_EQ(m2.cpu.regs[EAX], 0xff000000u);

    // Shift by zero leaves flags untouched.
    Assembler as3(0x1000);
    as3.stc();
    as3.movRI(ECX, 0); // CL = 0
    as3.movRI(EAX, 5);
    as3.shiftRCl(Op::Shl, EAX);
    as3.hlt();
    Machine m3(as3);
    m3.run();
    EXPECT_EQ(m3.cpu.regs[EAX], 5u);
    EXPECT_TRUE(m3.cpu.flag(FLAG_CF));
}

TEST(Interp, CondBranchMatrix)
{
    // For each cc, set flags via cmp and verify the branch agrees with
    // condTrue.
    struct Case
    {
        u32 a, b;
    };
    const Case cases[] = {{5, 5}, {3, 5}, {5, 3}, {0x80000000, 1},
                          {1, 0x80000000}, {0, 0}};
    for (const Case &c : cases) {
        for (unsigned cc = 0; cc < 16; ++cc) {
            Assembler as(0x1000);
            auto yes = as.newLabel();
            as.movRI(EAX, c.a);
            as.aluRI(Op::Cmp, EAX, static_cast<i32>(c.b));
            as.jcc(static_cast<Cond>(cc), yes);
            as.movRI(EDX, 0);
            as.hlt();
            as.bind(yes);
            as.movRI(EDX, 1);
            as.hlt();
            Machine m(as);
            m.run();

            CpuState ref;
            u32 junk;
            ref.eflags = flags::sub(c.a, c.b, 0, 4, junk);
            bool expect = condTrue(static_cast<Cond>(cc), ref.eflags);
            EXPECT_EQ(m.cpu.regs[EDX], expect ? 1u : 0u)
                << "cc=" << cc << " a=" << c.a << " b=" << c.b;
        }
    }
}

TEST(Interp, XchgAndLea)
{
    Assembler as(0x1000);
    as.movRI(EAX, 1);
    as.movRI(EDX, 2);
    as.xchg(EAX, EDX);
    as.lea(ECX, MemRef{EAX, EDX, 4, 10}); // 2 + 1*4 + 10
    as.hlt();
    Machine m(as);
    m.run();
    EXPECT_EQ(m.cpu.regs[EAX], 2u);
    EXPECT_EQ(m.cpu.regs[EDX], 1u);
    EXPECT_EQ(m.cpu.regs[ECX], 16u);
}

TEST(Interp, DecodeFaultReported)
{
    Assembler as(0x1000);
    as.db(0x0f);
    as.db(0x0b); // UD2
    Machine m(as);
    EXPECT_EQ(m.run(), Exit::DecodeFault);
}

} // namespace
} // namespace cdvm::x86
