/**
 * @file
 * Micro-op encoding tests: exact round-trips across formats (16-bit
 * compact, 32-bit, extension words), size accounting, and the
 * whole-program property that every cracked instruction's encoding
 * decodes back to semantically identical micro-ops.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "workload/program_gen.hh"
#include "x86/decoder.hh"

namespace cdvm::uops
{
namespace
{

/** Semantic equality (ignores the x86pc provenance tag). */
void
expectSameUop(const Uop &a, const Uop &b, const std::string &label)
{
    EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op)) << label;
    EXPECT_EQ(a.dst, b.dst) << label;
    EXPECT_EQ(a.src1, b.src1) << label;
    EXPECT_EQ(a.src2, b.src2) << label;
    EXPECT_EQ(a.size, b.size) << label;
    if (a.isMem()) {
        EXPECT_EQ(a.scale, b.scale) << label;
    }
    EXPECT_EQ(a.cond, b.cond) << label;
    EXPECT_EQ(a.hasImm, b.hasImm) << label;
    if (a.hasImm) {
        EXPECT_EQ(a.imm, b.imm) << label;
    }
    EXPECT_EQ(a.writeFlags, b.writeFlags) << label;
    EXPECT_EQ(a.fusedHead, b.fusedHead) << label;
    if (a.op == UOp::Br || a.op == UOp::Jmp) {
        EXPECT_EQ(a.target, b.target) << label;
    }
}

void
roundTrip(const Uop &u, unsigned expect_bytes, const std::string &label)
{
    u8 buf[MAX_UOP_BYTES];
    unsigned n = encodeOne(u, buf);
    EXPECT_EQ(n, expect_bytes) << label;
    EXPECT_EQ(u.encodedSize(), n) << label;
    Uop out;
    unsigned m = decodeOne(std::span<const u8>(buf, n), out);
    ASSERT_EQ(m, n) << label;
    expectSameUop(u, out, label);
}

Uop
mk(UOp op)
{
    Uop u;
    u.op = op;
    return u;
}

TEST(Encoding, CompactSixteenBit)
{
    Uop add = mk(UOp::Add);
    add.dst = add.src1 = 3;
    add.src2 = 7;
    add.writeFlags = true;
    roundTrip(add, 2, "compact add");

    Uop mov = mk(UOp::Mov);
    mov.dst = 4;
    mov.src1 = 12;
    roundTrip(mov, 2, "compact mov");

    Uop cmp = mk(UOp::Cmp);
    cmp.src1 = 1;
    cmp.src2 = 2;
    cmp.writeFlags = true;
    roundTrip(cmp, 2, "compact cmp");

    roundTrip(mk(UOp::Nop), 2, "nop");

    // Fused head still fits the compact format.
    add.fusedHead = true;
    roundTrip(add, 2, "fused compact add");
}

TEST(Encoding, CompactIneligibleFallsBack)
{
    // Three-address add cannot use the two-address compact form.
    Uop add = mk(UOp::Add);
    add.dst = 0;
    add.src1 = 1;
    add.src2 = 2;
    add.writeFlags = true;
    roundTrip(add, 4, "3-address add");

    // High register numbers need the 32-bit form.
    Uop hi = mk(UOp::Add);
    hi.dst = hi.src1 = 20;
    hi.src2 = 21;
    hi.writeFlags = true;
    roundTrip(hi, 4, "high regs");

    // Sized ALU needs the size field.
    Uop sized = mk(UOp::Add);
    sized.dst = sized.src1 = 0;
    sized.src2 = 1;
    sized.size = 1;
    sized.writeFlags = true;
    roundTrip(sized, 4, "8-bit add");
}

TEST(Encoding, ImmediateForms)
{
    // Inline 6-bit immediate.
    Uop small = mk(UOp::Add);
    small.dst = small.src1 = 4;
    small.hasImm = true;
    small.imm = -17;
    small.writeFlags = true;
    roundTrip(small, 4, "imm6");

    // 16-bit extension.
    Uop med = mk(UOp::Add);
    med.dst = med.src1 = 4;
    med.hasImm = true;
    med.imm = 1000;
    med.writeFlags = true;
    roundTrip(med, 6, "imm16");

    // 32-bit extension.
    Uop big = mk(UOp::Limm);
    big.dst = 2;
    big.hasImm = true;
    big.imm = static_cast<i32>(0xdeadbeef);
    roundTrip(big, 8, "imm32");
}

TEST(Encoding, MemoryForms)
{
    Uop ld = mk(UOp::Ld);
    ld.dst = 0;
    ld.src1 = 3; // base
    ld.hasImm = true;
    ld.imm = 8;
    roundTrip(ld, 4, "ld base+disp8");

    Uop ldx = mk(UOp::Ldz8);
    ldx.dst = 8;
    ldx.src1 = 3;
    ldx.src2 = 6; // index
    ldx.scale = 4;
    ldx.hasImm = true;
    ldx.imm = 0; // indexed, zero disp: three-specifier form
    roundTrip(ldx, 4, "indexed zero disp");

    Uop ldd = mk(UOp::Lds16);
    ldd.dst = 8;
    ldd.src1 = 3;
    ldd.src2 = 6;
    ldd.scale = 8;
    ldd.hasImm = true;
    ldd.imm = 0x1234; // indexed with disp: needs the extension
    roundTrip(ldd, 6, "indexed disp16");

    Uop st = mk(UOp::St);
    st.dst = 5; // data register
    st.src1 = 4;
    st.hasImm = true;
    st.imm = -4;
    roundTrip(st, 4, "store");

    Uop lea = mk(UOp::Lea);
    lea.dst = 1;
    lea.src1 = 2;
    lea.src2 = 3;
    lea.scale = 2;
    lea.hasImm = true;
    lea.imm = 100000;
    roundTrip(lea, 8, "lea disp32");
}

TEST(Encoding, ControlTransfer)
{
    Uop br = mk(UOp::Br);
    br.cond = 5; // NE
    br.target = 0x00401234;
    roundTrip(br, 8, "br");

    Uop brc = mk(UOp::Br);
    brc.cond = static_cast<u8>(UCond::CsrCmplx);
    brc.target = 0xffff0001;
    roundTrip(brc, 8, "br.cpx");

    Uop jmp = mk(UOp::Jmp);
    jmp.target = 0x00400000;
    roundTrip(jmp, 8, "jmp");

    Uop jr = mk(UOp::Jr);
    jr.src1 = 9;
    roundTrip(jr, 4, "jr");
}

TEST(Encoding, SetccAndSpecials)
{
    Uop s = mk(UOp::Setcc);
    s.dst = 8;
    s.cond = 0xf; // G
    roundTrip(s, 4, "setcc");

    Uop x = mk(UOp::XltX86);
    x.dst = 1;
    x.src1 = 0;
    roundTrip(x, 4, "xltx86");

    Uop mc = mk(UOp::MovCsr);
    mc.dst = 18;
    roundTrip(mc, 4, "movcsr");

    roundTrip(mk(UOp::ExitVm), 4, "exitvm");
}

TEST(Encoding, WholeProgramRoundTrip)
{
    // Property: crack + encode + decode every instruction of a
    // generated program and compare semantics.
    workload::ProgramParams pp;
    pp.seed = 23;
    workload::Program prog = workload::generateProgram(pp);
    std::size_t pos = 0;
    unsigned checked = 0;
    while (pos + x86::MAX_INSN_LEN < prog.image.size()) {
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(prog.image.data() + pos,
                                x86::MAX_INSN_LEN + 1),
            prog.codeBase + pos);
        if (!dr.ok) {
            ++pos;
            continue;
        }
        CrackResult cr = crack(dr.insn);
        std::vector<u8> bytes = encode(cr.uops);
        EXPECT_EQ(bytes.size(), encodedBytes(cr.uops));
        UopVec out;
        ASSERT_TRUE(decodeAll(
            std::span<const u8>(bytes.data(), bytes.size()), out));
        ASSERT_EQ(out.size(), cr.uops.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            expectSameUop(cr.uops[i], out[i],
                          "insn @" + std::to_string(pos) + " uop " +
                              std::to_string(i));
        pos += dr.insn.length;
        ++checked;
    }
    EXPECT_GT(checked, 200u);
}

} // namespace
} // namespace cdvm::uops
