/**
 * @file
 * Golden-file regression for the startup timing simulator.
 *
 * Two guarantees:
 *
 *  - Async N=0 is the synchronous model, bit for bit: vmSoftAsync(0)
 *    and vmBeAsync(0) must reproduce vmSoft/vmBe exactly (every cycle
 *    bucket, every curve sample). The async overlap model must be a
 *    pure extension, never a perturbation of the paper's baselines.
 *
 *  - The fig2/fig8 headline numbers on a fixed-seed small trace match
 *    tests/golden/startup_small.txt. The simulator is deterministic,
 *    so any drift is a (possibly unintentional) model change; refresh
 *    the file with CDVM_UPDATE_GOLDEN=1 after verifying the change is
 *    intended.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "timing/startup_sim.hh"
#include "workload/winstone.hh"

#ifndef CDVM_TEST_SRC_DIR
#define CDVM_TEST_SRC_DIR "."
#endif

namespace cdvm
{
namespace
{

constexpr u64 GOLDEN_INSNS = 1'000'000;

timing::StartupResult
simulate(const timing::MachineConfig &m)
{
    workload::AppProfile app = workload::winstoneAverage(GOLDEN_INSNS);
    timing::StartupSim sim(m, app);
    return sim.run();
}

// ---------------------------------------------------------------------
// N=0 async == sync, bit for bit
// ---------------------------------------------------------------------

void
expectBitIdentical(const timing::StartupResult &a,
                   const timing::StartupResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.totalInsns, b.totalInsns);
    EXPECT_EQ(a.insnsCold, b.insnsCold);
    EXPECT_EQ(a.insnsBbt, b.insnsBbt);
    EXPECT_EQ(a.insnsSbt, b.insnsSbt);
    EXPECT_EQ(a.staticInsnsBbt, b.staticInsnsBbt);
    EXPECT_EQ(a.staticInsnsSbt, b.staticInsnsSbt);
    EXPECT_EQ(a.bbtTranslations, b.bbtTranslations);
    EXPECT_EQ(a.sbtRegionTranslations, b.sbtRegionTranslations);
    for (size_t i = 0;
         i < static_cast<size_t>(timing::CycleCat::NUM_CATS); ++i)
        EXPECT_EQ(a.catCycles[i], b.catCycles[i]) << "category " << i;
    EXPECT_EQ(a.decodeActiveCycles, b.decodeActiveCycles);
    EXPECT_EQ(a.bgSbtXlateCycles, b.bgSbtXlateCycles);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].cycles, b.samples[i].cycles)
            << "sample " << i;
        EXPECT_EQ(a.samples[i].insns, b.samples[i].insns)
            << "sample " << i;
    }
}

TEST(TimingGolden, AsyncZeroContextsIsBitIdenticalToSyncSoft)
{
    timing::MachineConfig async0 = timing::MachineConfig::vmSoftAsync(0);
    async0.name = "VM.soft"; // only the model must match, not the label
    expectBitIdentical(simulate(timing::MachineConfig::vmSoft()),
                       simulate(async0));
}

TEST(TimingGolden, AsyncZeroContextsIsBitIdenticalToSyncBe)
{
    timing::MachineConfig async0 = timing::MachineConfig::vmBeAsync(0);
    async0.name = "VM.be";
    expectBitIdentical(simulate(timing::MachineConfig::vmBe()),
                       simulate(async0));
}

TEST(TimingGolden, AsyncOverlapStrictlyReducesCriticalPath)
{
    timing::StartupResult sync =
        simulate(timing::MachineConfig::vmSoft());
    timing::StartupResult async2 =
        simulate(timing::MachineConfig::vmSoftAsync(2));

    // Same work retired, strictly fewer emulation-thread cycles: the
    // Delta_SBT that was on the critical path became occupancy.
    EXPECT_EQ(sync.totalInsns, async2.totalInsns);
    EXPECT_LT(async2.totalCycles, sync.totalCycles);
    EXPECT_GT(async2.bgSbtXlateCycles, 0.0);
    EXPECT_EQ(sync.bgSbtXlateCycles, 0.0);
    EXPECT_EQ(
        async2
            .catCycles[static_cast<size_t>(timing::CycleCat::SbtXlate)],
        0.0)
        << "async machine still charged SBT work on the critical path";
}

// ---------------------------------------------------------------------
// Golden-file comparison
// ---------------------------------------------------------------------

std::map<std::string, double>
metricsFor(const char *key, const timing::StartupResult &r)
{
    std::map<std::string, double> m;
    auto put = [&](const char *name, double v) {
        m[std::string(key) + "." + name] = v;
    };
    put("total_cycles", static_cast<double>(r.totalCycles));
    put("total_insns", static_cast<double>(r.totalInsns));
    put("insns_sbt", static_cast<double>(r.insnsSbt));
    put("static_insns_sbt", static_cast<double>(r.staticInsnsSbt));
    put("sbt_xlate_cycles",
        r.catCycles[static_cast<size_t>(timing::CycleCat::SbtXlate)]);
    put("sbt_xlate_bg_cycles", r.bgSbtXlateCycles);
    return m;
}

TEST(TimingGolden, Fig2Fig8MachinesMatchGoldenFile)
{
    const std::string path = std::string(CDVM_TEST_SRC_DIR) +
                             "/golden/startup_small.txt";

    std::map<std::string, double> got;
    struct Entry
    {
        const char *key;
        timing::MachineConfig cfg;
    };
    const Entry entries[] = {
        {"ref", timing::MachineConfig::refSuperscalar()},
        {"vm_interp", timing::MachineConfig::vmInterp()},
        {"vm_soft", timing::MachineConfig::vmSoft()},
        {"vm_be", timing::MachineConfig::vmBe()},
        {"vm_fe", timing::MachineConfig::vmFe()},
        {"vm_soft_async", timing::MachineConfig::vmSoftAsync(2)},
        {"vm_be_async", timing::MachineConfig::vmBeAsync(2)},
    };
    for (const Entry &e : entries) {
        for (const auto &kv : metricsFor(e.key, simulate(e.cfg)))
            got[kv.first] = kv.second;
    }

    if (std::getenv("CDVM_UPDATE_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "# startup-sim golden metrics: winstoneAverage("
            << GOLDEN_INSNS << ")\n";
        for (const auto &kv : got) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", kv.second);
            out << kv.first << " " << buf << "\n";
        }
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with CDVM_UPDATE_GOLDEN=1)";

    std::map<std::string, double> want;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string k;
        double v;
        ASSERT_TRUE(static_cast<bool>(ls >> k >> v))
            << "malformed golden line: " << line;
        want[k] = v;
    }

    ASSERT_EQ(want.size(), got.size())
        << "golden metric set changed; regenerate the file";
    for (const auto &kv : want) {
        auto it = got.find(kv.first);
        ASSERT_NE(it, got.end()) << "missing metric " << kv.first;
        // The simulator is deterministic; the only slack allowed is
        // the %.17g round-trip.
        const double tol =
            1e-12 * std::max(1.0, std::fabs(kv.second));
        EXPECT_NEAR(it->second, kv.second, tol) << kv.first;
    }
}

} // namespace
} // namespace cdvm
