/**
 * @file
 * Assembler <-> decoder round-trip property tests: everything the
 * assembler emits must decode back to the same semantic instruction,
 * with exactly the emitted length.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "x86/asm.hh"
#include "x86/decoder.hh"

namespace cdvm::x86
{
namespace
{

/** Decode every instruction in a buffer; fail on any gap or error. */
std::vector<Insn>
decodeAllInsns(const std::vector<u8> &buf, Addr base)
{
    std::vector<Insn> out;
    std::size_t pos = 0;
    while (pos < buf.size()) {
        std::vector<u8> win(buf.begin() + static_cast<long>(pos),
                            buf.end());
        win.resize(std::max<std::size_t>(win.size(), MAX_INSN_LEN + 1),
                   0x90);
        DecodeResult r = decode(
            std::span<const u8>(win.data(), win.size()), base + pos);
        EXPECT_TRUE(r.ok) << "undecodable at +" << pos << ": "
                          << r.error;
        if (!r.ok)
            break;
        out.push_back(r.insn);
        pos += r.insn.length;
    }
    return out;
}

TEST(AsmRoundtrip, EveryEmitterFormDecodes)
{
    Assembler as(0x1000);
    MemRef simple{EBX, REG_NONE, 1, 0x40};
    MemRef sib{EBX, ESI, 4, -8};
    MemRef abs{REG_NONE, REG_NONE, 1, 0x00800000};
    MemRef idx_only{REG_NONE, EDI, 8, 0x100};
    MemRef esp_base{ESP, REG_NONE, 1, 8};
    MemRef ebp_zero{EBP, REG_NONE, 1, 0};

    as.aluRR(Op::Add, EAX, ECX);
    as.aluRM(Op::Sub, EDX, sib);
    as.aluMR(Op::Xor, simple, ESI);
    as.aluRI(Op::And, EDI, 0x7f);      // imm8 form
    as.aluRI(Op::Or, EAX, 0x12345);    // imm32 form
    as.aluMI(Op::Cmp, simple, -3);
    as.aluAccI(Op::Adc, 0x1000);
    as.movRR(EBP, ESP);
    as.movRI(ESI, 0xcafebabe);
    as.movRM(EAX, esp_base);
    as.movMR(ebp_zero, EDX);
    as.movMI(abs, 0x55);
    as.movzx(EAX, ECX, 1);
    as.movzx(EDX, EBX, 2);
    as.movzxM(ESI, simple, 1);
    as.movsx(EDI, EAX, 1);
    as.lea(EAX, sib);
    as.xchg(EBX, ECX);
    as.push(EAX);
    as.pushImm(5);
    as.pushImm(0x4000);
    as.pushMem(simple);
    as.pop(EDX);
    as.inc(ESI);
    as.dec(EDI);
    as.incMem(simple);
    as.decMem(sib);
    as.notReg(EAX);
    as.negReg(ECX);
    as.shiftRI(Op::Shl, EAX, 1);
    as.shiftRI(Op::Shr, EBX, 9);
    as.shiftRI(Op::Sar, ECX, 31);
    as.shiftRI(Op::Rol, EDX, 3);
    as.shiftRI(Op::Ror, ESI, 5);
    as.shiftRCl(Op::Shl, EDI);
    as.testRR(EAX, EBX);
    as.testRI(ECX, 0xff00);
    as.imulRR(EAX, EDX);
    as.imulRM(EBX, idx_only);
    as.imulRRI(ECX, ESI, 9);
    as.imulRRI(EDX, EDI, 100000);
    as.mulA(EBX);
    as.imulA(ECX);
    as.divA(ESI);
    as.idivA(EDI);
    as.cdq();
    as.setcc(Cond::G, EAX);
    as.nop();
    as.clc();
    as.stc();
    as.jmpInd(EAX);
    as.callInd(EDX);
    as.retImm(12);
    as.ret();
    as.int3();
    as.hlt();

    std::vector<u8> buf = as.finalize();
    std::vector<Insn> insns = decodeAllInsns(buf, 0x1000);
    // Count: every emitter call above decodes to exactly one insn.
    EXPECT_EQ(insns.size(), 56u);
}

TEST(AsmRoundtrip, BranchFixups)
{
    Assembler as(0x2000);
    auto fwd = as.newLabel();
    auto back = as.newLabel();

    as.bind(back);
    as.nop();
    as.jcc(Cond::E, fwd);      // forward near
    as.jccShort(Cond::NE, fwd); // forward short
    as.jmp(fwd);
    as.jmpShort(back);          // backward short
    as.call(back);
    as.bind(fwd);
    as.hlt();

    std::vector<u8> buf = as.finalize();
    std::vector<Insn> insns = decodeAllInsns(buf, 0x2000);
    ASSERT_EQ(insns.size(), 7u);

    Addr fwd_addr = as.labelAddr(fwd);
    Addr back_addr = as.labelAddr(back);
    EXPECT_EQ(insns[1].target, fwd_addr);
    EXPECT_EQ(insns[2].target, fwd_addr);
    EXPECT_EQ(insns[3].target, fwd_addr);
    EXPECT_EQ(insns[4].target, back_addr);
    EXPECT_EQ(insns[5].target, back_addr);
}

TEST(AsmRoundtrip, RandomAluMatrix)
{
    // Property sweep: random ALU ops with random operand forms must
    // round-trip with matching semantics.
    Pcg32 rng(99);
    static const Op ops[] = {Op::Add, Op::Or, Op::Adc, Op::Sbb,
                             Op::And, Op::Sub, Op::Xor, Op::Cmp};
    for (int iter = 0; iter < 300; ++iter) {
        Assembler as(0x3000);
        Op op = ops[rng.below(8)];
        Reg r1 = static_cast<Reg>(rng.below(8));
        Reg r2 = static_cast<Reg>(rng.below(8));
        int form = static_cast<int>(rng.below(4));
        MemRef m;
        m.base = static_cast<Reg>(rng.below(8));
        if (rng.chance(0.5)) {
            Reg idx = static_cast<Reg>(rng.below(8));
            if (idx != ESP) {
                m.index = idx;
                m.scale = static_cast<u8>(1u << rng.below(4));
            }
        }
        m.disp = static_cast<i32>(rng.next()) >> (rng.below(2) ? 20 : 4);

        switch (form) {
          case 0: as.aluRR(op, r1, r2); break;
          case 1: as.aluRM(op, r1, m); break;
          case 2: as.aluMR(op, m, r2); break;
          case 3:
            as.aluRI(op, r1, static_cast<i32>(rng.next()) >> 8);
            break;
        }
        as.hlt();
        std::vector<u8> buf = as.finalize();
        std::vector<Insn> insns = decodeAllInsns(buf, 0x3000);
        ASSERT_EQ(insns.size(), 2u) << "iter " << iter;
        const Insn &in = insns[0];
        EXPECT_EQ(in.op, op) << "iter " << iter;
        switch (form) {
          case 0:
            EXPECT_EQ(in.dst.reg, r1);
            EXPECT_EQ(in.src.reg, r2);
            break;
          case 1:
            EXPECT_EQ(in.dst.reg, r1);
            ASSERT_TRUE(in.src.isMem());
            EXPECT_EQ(in.src.mem.base, m.base);
            EXPECT_EQ(in.src.mem.disp, m.disp);
            if (m.hasIndex()) {
                EXPECT_EQ(in.src.mem.index, m.index);
                EXPECT_EQ(in.src.mem.scale, m.scale);
            }
            break;
          case 2:
            ASSERT_TRUE(in.dst.isMem());
            EXPECT_EQ(in.dst.mem.base, m.base);
            EXPECT_EQ(in.src.reg, r2);
            break;
          case 3:
            EXPECT_EQ(in.dst.reg, r1);
            ASSERT_TRUE(in.src.isImm());
            break;
        }
    }
}

} // namespace
} // namespace cdvm::x86
