/**
 * @file
 * Observability-layer tests: the hierarchical StatRegistry, the phase
 * tracer (ring wraparound, disabled-mode no-op), span coalescing,
 * histogram percentiles, and the VMM/timing stat exports.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/statreg.hh"
#include "common/trace.hh"
#include "timing/startup_sim.hh"
#include "vmm/vmm.hh"
#include "workload/winstone.hh"
#include "x86/asm.hh"

namespace cdvm
{
namespace
{

TEST(StatRegistry, ScalarSetAddAndValue)
{
    StatRegistry reg;
    reg.set("vmm.bbt.translations", 3.0, "blocks");
    reg.add("vmm.bbt.translations", 2.0);
    EXPECT_DOUBLE_EQ(reg.value("vmm.bbt.translations"), 5.0);
    EXPECT_TRUE(reg.has("vmm.bbt.translations"));
    EXPECT_FALSE(reg.has("vmm.bbt.nope"));
    EXPECT_DOUBLE_EQ(reg.value("vmm.bbt.nope"), 0.0);

    // The cached-reference fast path observes set()/add().
    double &c = reg.scalar("vmm.dispatches");
    c += 7.0;
    EXPECT_DOUBLE_EQ(reg.value("vmm.dispatches"), 7.0);
    reg.add("vmm.dispatches", 1.0);
    EXPECT_DOUBLE_EQ(c, 8.0);
}

TEST(StatRegistry, GaugePullsAtDumpTime)
{
    StatRegistry reg;
    double backing = 1.0;
    reg.gauge("dbt.codecache.used", [&backing] { return backing; });
    backing = 42.0;
    EXPECT_DOUBLE_EQ(reg.value("dbt.codecache.used"), 42.0);
}

TEST(StatRegistry, NamesAreSortedAndComplete)
{
    StatRegistry reg;
    reg.set("b.two", 2.0);
    reg.set("a.one", 1.0);
    reg.set("b.one.deep", 3.0);
    std::vector<std::string> n = reg.names();
    ASSERT_EQ(n.size(), 3u);
    EXPECT_EQ(n[0], "a.one");
    EXPECT_EQ(n[1], "b.one.deep");
    EXPECT_EQ(n[2], "b.two");
}

TEST(StatRegistry, JsonNestsByPathSegment)
{
    StatRegistry reg;
    reg.set("vmm.insns.total", 100.0);
    reg.set("vmm.dispatches", 4.0);
    reg.set("timing.pipeline.cycles", 250.0);
    std::string js = reg.dumpJson();
    // Group keys appear once; leaves carry the values.
    EXPECT_NE(js.find("\"vmm\""), std::string::npos);
    EXPECT_NE(js.find("\"insns\""), std::string::npos);
    EXPECT_NE(js.find("\"total\": 100"), std::string::npos);
    EXPECT_NE(js.find("\"pipeline\""), std::string::npos);
    EXPECT_NE(js.find("\"cycles\": 250"), std::string::npos);
    // Integral values print without a fraction.
    EXPECT_EQ(js.find("100.0"), std::string::npos);
}

TEST(StatRegistry, RunningAndHistogramDistributions)
{
    StatRegistry reg;
    RunningStat &rs = reg.running("vmm.block_size");
    rs.add(2.0);
    rs.add(4.0);
    rs.add(6.0);
    LogHistogram &h = reg.histogram("vmm.exec_freq", 10.0, 6);
    h.add(5);
    h.add(50);
    std::string js = reg.dumpJson();
    EXPECT_NE(js.find("\"mean\": 4"), std::string::npos);
    EXPECT_NE(js.find("\"stddev\""), std::string::npos);
    EXPECT_NE(js.find("\"p90\""), std::string::npos);
}

TEST(RunningStat, StddevAndVariance)
{
    RunningStat rs;
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
    rs.add(10.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0); // n < 2
    RunningStat s2;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s2.add(v);
    EXPECT_NEAR(s2.variance(), 4.0, 1e-9); // classic textbook set
    EXPECT_NEAR(s2.stddev(), 2.0, 1e-9);
}

TEST(LogHistogram, PercentileInterpolation)
{
    LogHistogram h(10.0, 6);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0); // empty
    // 100 values in [1, 10), 100 in [10, 100).
    h.add(5, 100.0);
    h.add(50, 100.0);
    double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 10.0);
    double p99 = h.percentile(99.0);
    EXPECT_GT(p99, 10.0);
    EXPECT_LE(p99, 100.0);
    // Clamped arguments behave.
    EXPECT_LE(h.percentile(-5.0), h.percentile(200.0));
}

TEST(Tracer, DisabledModeIsFreeAndEmpty)
{
    Tracer tr;
    EXPECT_FALSE(tr.enabled());
    EXPECT_EQ(tr.capacity(), 0u); // no allocation when disabled
    tr.span(TracePhase::Interp, 0, 10);
    tr.instant(TracePhase::Chain, 5);
    EXPECT_EQ(tr.recorded(), 0u);
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, RingWraparoundKeepsNewest)
{
    Tracer tr;
    tr.enable(4);
    EXPECT_TRUE(tr.enabled());
    EXPECT_EQ(tr.capacity(), 4u);
    for (u64 i = 0; i < 10; ++i)
        tr.span(TracePhase::BbtExec, i * 100, 50, i);
    EXPECT_EQ(tr.recorded(), 10u);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    std::vector<TraceEvent> evs = tr.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-first snapshot of the newest four events (args 6..9).
    for (u64 i = 0; i < 4; ++i) {
        EXPECT_EQ(evs[i].arg, 6 + i);
        EXPECT_EQ(evs[i].ts, (6 + i) * 100);
    }
    tr.disable();
    EXPECT_EQ(tr.capacity(), 0u);
}

TEST(Tracer, ChromeJsonHasPhasesTracksAndMetadata)
{
    Tracer tr;
    tr.enable(16);
    tr.span(TracePhase::Interp, 0, 100, 7, 0);
    tr.span(TracePhase::BbtTranslate, 100, 20, 0, 0);
    tr.instant(TracePhase::CacheFlush, 120, 1, 1);
    std::string js = tr.dumpChromeJson();
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"name\": \"interp\""), std::string::npos);
    EXPECT_NE(js.find("\"cat\": \"translate\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\": \"i\""), std::string::npos);
    // Thread-name metadata for both tracks used.
    EXPECT_NE(js.find("\"vmm\""), std::string::npos);
    EXPECT_NE(js.find("\"timing\""), std::string::npos);
    EXPECT_NE(js.find("\"dropped_events\": 0"), std::string::npos);
}

TEST(Tracer, SpanCoalescerMergesBackToBack)
{
    Tracer tr;
    tr.enable(16);
    {
        SpanCoalescer co(tr, 0);
        co.add(TracePhase::SbtExec, 0, 10, 1);
        co.add(TracePhase::SbtExec, 10, 10, 2);  // contiguous: merge
        co.add(TracePhase::SbtExec, 20, 5, 3);   // contiguous: merge
        co.add(TracePhase::BbtExec, 25, 5, 4);   // phase change: flush
        co.add(TracePhase::BbtExec, 100, 5, 5);  // gap: flush
    } // dtor flushes the open span
    std::vector<TraceEvent> evs = tr.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].phase, TracePhase::SbtExec);
    EXPECT_EQ(evs[0].ts, 0u);
    EXPECT_EQ(evs[0].dur, 25u);
    EXPECT_EQ(evs[1].phase, TracePhase::BbtExec);
    EXPECT_EQ(evs[1].dur, 5u);
    EXPECT_EQ(evs[2].ts, 100u);
}

/** End-to-end: a real VMM run populates vmm.* and dbt.* stats. */
TEST(Observability, VmmExportPopulatesRegistry)
{
    x86::Assembler as(0x00400000);
    auto loop = as.newLabel();
    as.movRI(x86::ECX, 400);
    as.movRI(x86::EBX, 0);
    as.bind(loop);
    as.aluRR(x86::Op::Add, x86::EBX, x86::ECX);
    as.dec(x86::ECX);
    as.jcc(x86::Cond::NE, loop);
    as.hlt();

    x86::Memory mem;
    mem.writeBlock(0x00400000, as.finalize());
    x86::CpuState cpu;
    cpu.eip = 0x00400000;

    vmm::VmmConfig cfg;
    cfg.hotThreshold = 20;
    vmm::Vmm vm(mem, cfg);
    Tracer &tr = Tracer::global();
    tr.enable(1024);
    EXPECT_EQ(vm.run(cpu, 10'000'000), x86::Exit::Halted);

    StatRegistry reg;
    vm.exportStats(reg);
    EXPECT_GT(reg.value("vmm.insns.total"), 0.0);
    EXPECT_GT(reg.value("vmm.bbt.translations"), 0.0);
    EXPECT_GT(reg.value("dbt.bbt.blocks"), 0.0);
    EXPECT_GT(reg.value("dbt.codecache.bbt.used_bytes"), 0.0);
    EXPECT_GT(reg.value("dbt.lookup.lookups"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("vmm.insns.total"),
                     static_cast<double>(vm.stats().totalRetired()));
    // The run recorded translate/exec phase spans on track 0.
    EXPECT_GT(tr.recorded(), 0u);
    EXPECT_GT(vm.traceClock(), 0u);
    tr.disable();
}

/** End-to-end: a startup-sim run populates timing.* stats. */
TEST(Observability, StartupSimExportPopulatesRegistry)
{
    timing::StartupSim sim(timing::MachineConfig::vmSoft(),
                           workload::winstoneAverage(200'000));
    timing::StartupResult r = sim.run();
    StatRegistry reg;
    r.exportStats(reg, "timing.startup");
    EXPECT_GT(reg.value("timing.startup.total_cycles"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("timing.startup.total_insns"),
                     static_cast<double>(r.totalInsns));
    double stage_sum =
        reg.value("timing.startup.cycles.cold_exec") +
        reg.value("timing.startup.cycles.bbt_exec") +
        reg.value("timing.startup.cycles.sbt_exec") +
        reg.value("timing.startup.cycles.bbt_xlate") +
        reg.value("timing.startup.cycles.sbt_xlate") +
        reg.value("timing.startup.cycles.dispatch");
    EXPECT_NEAR(stage_sum,
                reg.value("timing.startup.total_cycles"),
                1.0 + stage_sum * 1e-9);
}

} // namespace
} // namespace cdvm
